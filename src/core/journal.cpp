#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "base/fs.hpp"
#include "base/hash.hpp"
#include "base/log.hpp"

namespace servet::core {

namespace {

constexpr const char* kRunHeader = "servet-journal 1";
constexpr const char* kRunFileName = "journal.servet";
constexpr const char* kSeriesHeader = "servet-series 1";
constexpr const char* kSeriesFileName = "series.servet";

std::string hex64(std::uint64_t v) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

std::optional<std::uint64_t> parse_hex64(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 16);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

std::string fmt_seconds(Seconds v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

/// Reads the next '\n'-terminated line starting at `pos`; false at EOF or
/// on an unterminated line (a torn append never counts as a line).
bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) return false;
    line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
}

/// "key = value" with the profile format's spacing; empty key on mismatch.
std::pair<std::string, std::string> split_kv(const std::string& line) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return {};
    const auto trim = [](std::string s) {
        const auto begin = s.find_first_not_of(" \t\r");
        if (begin == std::string::npos) return std::string{};
        const auto end = s.find_last_not_of(" \t\r");
        return s.substr(begin, end - begin + 1);
    };
    return {trim(line.substr(0, eq)), trim(line.substr(eq + 1))};
}

// ---- framed-record machinery shared by RunJournal and SeriesJournal ----

/// The identity block every journal kind starts with, after its magic.
std::string header_text(const char* magic, const RunJournal::Header& header) {
    std::string out = std::string(magic) + '\n';
    out += "options = " + hex64(header.options_hash) + '\n';
    out += "fingerprint = " + hex64(header.fingerprint) + '\n';
    out += "machine = " + header.machine + '\n';
    out += "cores = " + std::to_string(header.cores) + '\n';
    out += "page_size = " + std::to_string(header.page_size) + '\n';
    return out;
}

/// Parses the magic + identity block at `pos`, advancing it past the
/// header. Throws JournalError on any malformation.
RunJournal::Header parse_header(const std::string& text, std::size_t& pos, const char* magic,
                                const std::string& path) {
    std::string line;
    if (!next_line(text, pos, line) || line != magic)
        throw JournalError("malformed journal " + path + ": bad header (expected '" +
                           magic + "')");
    RunJournal::Header loaded;
    for (const char* key : {"options", "fingerprint", "machine", "cores", "page_size"}) {
        if (!next_line(text, pos, line))
            throw JournalError("malformed journal " + path + ": truncated header");
        const auto [k, v] = split_kv(line);
        if (k != key)
            throw JournalError("malformed journal " + path + ": expected '" + key +
                               "', found '" + line + "'");
        if (k == "machine") {
            loaded.machine = v;
            continue;
        }
        if (k == "options" || k == "fingerprint") {
            const auto parsed = parse_hex64(v);
            if (!parsed) throw JournalError("malformed journal " + path + ": bad " + k);
            (k == "options" ? loaded.options_hash : loaded.fingerprint) = *parsed;
            continue;
        }
        char* end = nullptr;
        const long long parsed = std::strtoll(v.c_str(), &end, 10);
        if (v.empty() || end != v.c_str() + v.size() || parsed < 0)
            throw JournalError("malformed journal " + path + ": bad " + k);
        if (k == "cores")
            loaded.cores = static_cast<int>(parsed);
        else
            loaded.page_size = static_cast<Bytes>(parsed);
    }
    return loaded;
}

/// Compatibility: resuming must never mix measurements of different
/// configurations or machines into one journal.
void check_compatible(const RunJournal::Header& loaded, const RunJournal::Header& expected,
                      const std::string& path) {
    if (loaded.options_hash != expected.options_hash)
        throw JournalError("journal " + path + " was written with options hash " +
                           hex64(loaded.options_hash) + " but this run's is " +
                           hex64(expected.options_hash) +
                           "; pass the same options to resume, or use a fresh --run-dir");
    if (loaded.fingerprint != 0 && expected.fingerprint != 0) {
        if (loaded.fingerprint != expected.fingerprint)
            throw JournalError("journal " + path + " measured machine fingerprint " +
                               hex64(loaded.fingerprint) + " but this run targets " +
                               hex64(expected.fingerprint) +
                               "; resume on the same machine, or use a fresh --run-dir");
    } else if (loaded.machine != expected.machine) {
        // No content fingerprint to compare (real hardware): the machine
        // name is the only identity available.
        throw JournalError("journal " + path + " measured machine '" + loaded.machine +
                           "' but this run targets '" + expected.machine +
                           "'; resume on the same machine, or use a fresh --run-dir");
    }
    if (loaded.cores != expected.cores || loaded.page_size != expected.page_size)
        throw JournalError("journal " + path + " measured a machine with " +
                           std::to_string(loaded.cores) + " cores and " +
                           std::to_string(loaded.page_size) + "-byte pages; this run's has " +
                           std::to_string(expected.cores) + " and " +
                           std::to_string(expected.page_size));
}

/// One committed framed record, plus where its frame line started — the
/// truncation point if a later record turns out torn.
struct FramedRecord {
    std::size_t offset = 0;
    std::string key;
    std::string extra;  ///< frame-line fields after the length (may be empty)
    std::string payload;
};

/// Parses `<kind> <key> <length>[ <extra>]\n<payload>\ncommit <key>
/// <hash>[ ...]\n` records from `pos` to EOF. Returns the byte offset
/// where parsing stopped: text.size() when every record committed, the
/// start of the first undecodable record otherwise (the torn-tail
/// signature of a crash mid-append — appends are serialized, so only the
/// last record can be torn).
std::size_t read_framed_records(const std::string& text, std::size_t pos, const char* kind,
                                std::vector<FramedRecord>& out) {
    std::string line;
    while (true) {
        const std::size_t record_start = pos;
        if (!next_line(text, pos, line)) return record_start;
        if (line.empty()) continue;
        std::istringstream fields{line};
        FramedRecord record;
        record.offset = record_start;
        std::string tag;
        std::size_t length = 0;
        if (!(fields >> tag >> record.key >> length) || tag != kind ||
            pos + length + 1 > text.size())
            return record_start;
        std::getline(fields, record.extra);
        const std::size_t keep = record.extra.find_first_not_of(" \t");
        record.extra = keep == std::string::npos ? std::string{} : record.extra.substr(keep);
        record.payload = text.substr(pos, length);
        pos += length;
        if (text[pos] != '\n') return record_start;
        ++pos;
        std::string commit_line;
        if (!next_line(text, pos, commit_line)) return record_start;
        std::istringstream commit_fields{commit_line};
        std::string commit_tag;
        std::string commit_key;
        std::string hash_text;
        if (!(commit_fields >> commit_tag >> commit_key >> hash_text) ||
            commit_tag != "commit" || commit_key != record.key)
            return record_start;
        const auto hash = parse_hex64(hash_text);
        if (!hash || *hash != fnv1a64(record.payload)) return record_start;
        out.push_back(std::move(record));
    }
}

/// Physically removes a torn tail so the next fsync'd append lands after
/// the last *committed* record — appending after torn bytes would bury
/// every later record behind an unparseable one. Best-effort: on failure
/// the journal still loads (the tail re-discards every open), it just
/// must not be appended to, which the caller's log line makes loud.
void truncate_torn_tail(const std::string& path, std::size_t valid_bytes) {
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
        SERVET_LOG_ERROR("journal: cannot truncate torn tail of %s at %zu bytes; "
                         "records appended from here may be lost on the next load",
                         path.c_str(), valid_bytes);
}

/// Appends `record` to `path` and fsyncs it. The fsync is the commit
/// point: once it returns, the record survives any crash; a torn write
/// before it is discarded on load by the length/hash framing.
bool append_synced(const std::string& path, const std::string& record) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) return false;
    const char* data = record.data();
    std::size_t remaining = record.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd, data, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            return false;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    return synced;
}

}  // namespace

std::uint64_t suite_options_hash(const SuiteOptions& options) {
    Fingerprint fp;
    fp.add(std::string_view("suite-options 1"));
    const McalibratorOptions& mc = options.mcalibrator;
    fp.add(mc.min_size);
    fp.add(mc.max_size);
    fp.add(mc.stride);
    fp.add(mc.passes);
    fp.add(mc.repeats);
    fp.add(mc.core);
    const CacheDetectOptions& detect = options.detect;
    // detect.page_size is excluded: run_suite overwrites it from the
    // platform, whose identity the journal header carries already.
    fp.add(detect.gradient_threshold);
    fp.add(detect.min_total_rise);
    fp.add(detect.split_prominence);
    fp.add(static_cast<std::uint64_t>(detect.associativities.size()));
    for (const int k : detect.associativities) fp.add(k);
    fp.add(detect.mode_votes);
    fp.add(static_cast<int>(detect.model));
    const SharedCacheOptions& shared = options.shared_cache;
    fp.add(shared.stride);
    fp.add(shared.passes);
    fp.add(shared.ratio_threshold);
    fp.add(shared.only_with_core);
    const MemOverheadOptions& mem = options.mem_overhead;
    fp.add(mem.array_bytes);
    fp.add(mem.overhead_epsilon);
    fp.add(mem.cluster_tolerance);
    fp.add(mem.only_with_core);
    const CommCostsOptions& comm = options.comm;
    fp.add(comm.probe_message);
    fp.add(comm.reps);
    fp.add(comm.cluster_tolerance);
    fp.add(static_cast<std::uint64_t>(comm.sweep_sizes.size()));
    for (const Bytes size : comm.sweep_sizes) fp.add(size);
    fp.add(comm.max_concurrent);
    fp.add(comm.max_retries);
    fp.add(static_cast<std::uint64_t>(comm.probe_pairs.size()));
    for (const CorePair& pair : comm.probe_pairs) {
        fp.add(pair.a);
        fp.add(pair.b);
    }
    fp.add(options.run_cache_size);
    fp.add(options.run_shared_cache);
    fp.add(options.run_mem_overhead);
    fp.add(options.run_comm);
    return fp.value();
}

std::string RunJournal::file_path(const std::string& run_dir) {
    return run_dir + "/" + kRunFileName;
}

RunJournal::RunJournal(const std::string& run_dir, const Header& header, Mode mode)
    : path_(file_path(run_dir)), header_(header) {
    if (!create_directories(run_dir))
        throw JournalError("cannot create run directory " + run_dir);

    std::string text;
    const FileRead read = read_file(path_, &text);
    if (read == FileRead::Error)
        throw JournalError("cannot read run journal " + path_);

    if (mode == Mode::Resume && read == FileRead::Ok) {
        load(text);
        return;
    }
    // Fresh journal (Create, or Resume with nothing to resume): write the
    // header block atomically so a half-created journal never exists.
    if (!write_file_atomic(path_, header_text(kRunHeader, header_)))
        throw JournalError("cannot write run journal " + path_);
}

void RunJournal::load(const std::string& text) {
    std::size_t pos = 0;
    const Header loaded = parse_header(text, pos, kRunHeader, path_);
    check_compatible(loaded, header_, path_);

    std::vector<FramedRecord> framed;
    std::size_t valid_end = read_framed_records(text, pos, "phase", framed);
    for (std::size_t i = 0; i < framed.size(); ++i) {
        FramedRecord& record = framed[i];
        // The frame's trailing field is the producing run's wall-clock.
        // The commit hash covers only the payload, so this field can be
        // damaged on a record whose payload still verifies.
        char* end = nullptr;
        const double seconds = std::strtod(record.extra.c_str(), &end);
        if (record.extra.empty() || end != record.extra.c_str() + record.extra.size()) {
            if (i + 1 == framed.size()) {
                // Last committed record: the damage is a genuine tail and
                // truncating it only removes the bad record itself.
                valid_end = record.offset;
                break;
            }
            // Committed records follow: mid-file damage, not a torn tail.
            // Skip just this record in memory — truncating here would
            // physically destroy every later committed record.
            SERVET_LOG_ERROR("journal: skipping phase '%s' in %s: corrupt seconds "
                             "field on an otherwise committed record",
                             record.key.c_str(), path_.c_str());
            continue;
        }
        // Later records win: a repair rewrite never duplicates, but a
        // re-measured phase appended after a replayed one must shadow it.
        records_.insert_or_assign(record.key, Record{std::move(record.payload), seconds});
    }
    if (valid_end < text.size()) {
        dropped_torn_tail_ = true;
        truncate_torn_tail(path_, valid_end);
    }
}

const RunJournal::Record* RunJournal::find(const std::string& phase) const {
    const auto it = records_.find(phase);
    return it == records_.end() ? nullptr : &it->second;
}

bool RunJournal::append(const std::string& phase, const std::string& payload,
                        Seconds seconds, std::uint64_t digest) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string record = "phase " + phase + ' ' + std::to_string(payload.size()) + ' ' +
                         fmt_seconds(seconds) + '\n';
    record += payload;
    record += '\n';
    record += "commit " + phase + ' ' + hex64(fnv1a64(payload)) + ' ' + hex64(digest) + '\n';
    if (!append_synced(path_, record)) return false;
    records_.insert_or_assign(phase, Record{payload, seconds});
    return true;
}

bool RunJournal::drop(const std::string& phase) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (records_.erase(phase) == 0) return true;
    if (write_file_atomic(path_, serialize_all())) return true;
    SERVET_LOG_ERROR("journal: cannot rewrite %s after dropping phase %s", path_.c_str(),
                     phase.c_str());
    return false;
}

std::string RunJournal::serialize_all() const {
    std::string out = header_text(kRunHeader, header_);
    for (const auto& [phase, record] : records_) {
        out += "phase " + phase + ' ' + std::to_string(record.payload.size()) + ' ' +
               fmt_seconds(record.seconds) + '\n';
        out += record.payload;
        out += '\n';
        out += "commit " + phase + ' ' + hex64(fnv1a64(record.payload)) + ' ' + hex64(0) +
               '\n';
    }
    return out;
}

std::string SeriesJournal::file_path(const std::string& run_dir) {
    return run_dir + "/" + kSeriesFileName;
}

SeriesJournal::SeriesJournal(const std::string& run_dir, const Header& header, Mode mode)
    : path_(file_path(run_dir)), header_(header) {
    if (!create_directories(run_dir))
        throw JournalError("cannot create run directory " + run_dir);

    std::string text;
    const FileRead read = read_file(path_, &text);
    if (read == FileRead::Error)
        throw JournalError("cannot read series journal " + path_);

    if (mode == Mode::Resume && read == FileRead::Ok) {
        load(text);
        return;
    }
    if (!write_file_atomic(path_, header_text(kSeriesHeader, header_)))
        throw JournalError("cannot write series journal " + path_);
}

void SeriesJournal::load(const std::string& text) {
    std::size_t pos = 0;
    const Header loaded = parse_header(text, pos, kSeriesHeader, path_);
    check_compatible(loaded, header_, path_);

    std::vector<FramedRecord> framed;
    std::size_t valid_end = read_framed_records(text, pos, "sample", framed);
    for (FramedRecord& record : framed) {
        // Ticks are positional: sample k must carry key k. A mismatch
        // means the stream was edited or corrupted mid-file — everything
        // from here on is untrustworthy and is discarded like a torn tail.
        if (record.key != std::to_string(samples_.size())) {
            valid_end = record.offset;
            break;
        }
        samples_.push_back(std::move(record.payload));
    }
    if (valid_end < text.size()) {
        dropped_torn_tail_ = true;
        truncate_torn_tail(path_, valid_end);
    }
}

bool SeriesJournal::append(const std::string& payload) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::string tick = std::to_string(samples_.size());
    std::string record = "sample " + tick + ' ' + std::to_string(payload.size()) + '\n';
    record += payload;
    record += '\n';
    record += "commit " + tick + ' ' + hex64(fnv1a64(payload)) + '\n';
    if (!append_synced(path_, record)) return false;
    samples_.push_back(payload);
    return true;
}

}  // namespace servet::core
