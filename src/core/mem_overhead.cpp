#include "core/mem_overhead.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/log.hpp"
#include "stats/cluster.hpp"
#include "stats/unionfind.hpp"

namespace servet::core {

MemOverheadResult characterize_memory_overhead(Platform& platform,
                                               const MemOverheadOptions& options) {
    SERVET_CHECK(options.overhead_epsilon > 0 && options.overhead_epsilon < 1);
    const int n_cores = platform.core_count();

    MemOverheadResult result;
    result.reference_bandwidth = platform.copy_bandwidth(0, options.array_bytes);
    SERVET_CHECK(result.reference_bandwidth > 0);

    std::vector<CorePair> pairs;
    if (options.only_with_core >= 0) {
        SERVET_CHECK(options.only_with_core < n_cores);
        for (CoreId j = 0; j < n_cores; ++j)
            if (j != options.only_with_core)
                pairs.push_back(CorePair{options.only_with_core, j}.canonical());
    } else {
        pairs = all_core_pairs(n_cores);
    }

    // Fig. 6 main loop: measure each pair, keep those below the reference,
    // and cluster similar overheads into tiers.
    stats::SimilarityClusterer clusterer(options.cluster_tolerance);
    std::vector<CorePair> clustered_pairs;  // tag -> pair, parallel to clusterer tags
    const double cutoff = (1.0 - options.overhead_epsilon) * result.reference_bandwidth;
    for (const CorePair& pair : pairs) {
        const std::vector<BytesPerSecond> both =
            platform.copy_bandwidth_concurrent({pair.a, pair.b}, options.array_bytes);
        const BytesPerSecond b = both[0];
        result.pairs.push_back({pair, b});
        if (b < cutoff) {
            clusterer.add(b, clustered_pairs.size());
            clustered_pairs.push_back(pair);
        }
    }

    for (const stats::Cluster& cluster : clusterer.clusters()) {
        MemOverheadTier tier;
        tier.bandwidth = cluster.representative;
        for (std::size_t tag : cluster.members)
            tier.pairs.push_back(clustered_pairs[tag]);
        tier.groups = stats::groups_from_pairs(tier.pairs, n_cores);
        result.tiers.push_back(std::move(tier));
    }
    // Report tiers worst-first, like the paper's discussion (bus before cell).
    std::sort(result.tiers.begin(), result.tiers.end(),
              [](const MemOverheadTier& a, const MemOverheadTier& b) {
                  return a.bandwidth < b.bandwidth;
              });

    // Scalability (Fig. 9b): one representative group per tier is enough —
    // all groups of a tier behave alike by construction.
    for (std::size_t t = 0; t < result.tiers.size(); ++t) {
        const MemOverheadTier& tier = result.tiers[t];
        if (tier.groups.empty()) continue;
        MemScalabilityCurve curve;
        curve.tier = t;
        curve.group = tier.groups.front();
        for (std::size_t n = 1; n <= curve.group.size(); ++n) {
            const std::vector<CoreId> active(curve.group.begin(),
                                             curve.group.begin() + static_cast<std::ptrdiff_t>(n));
            const std::vector<BytesPerSecond> bw =
                platform.copy_bandwidth_concurrent(active, options.array_bytes);
            curve.bandwidth_by_n.push_back(bw.front());
        }
        result.scalability.push_back(std::move(curve));
    }

    SERVET_LOG_INFO("mem-overhead: ref %.2f GB/s, %zu tiers", result.reference_bandwidth / 1e9,
                    result.tiers.size());
    return result;
}

}  // namespace servet::core
