#include "core/mem_overhead.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/log.hpp"
#include "core/probe_common.hpp"
#include "obs/metrics.hpp"
#include "stats/cluster.hpp"
#include "stats/unionfind.hpp"

namespace servet::core {

namespace {
std::string core_list_key(const std::vector<CoreId>& cores) {
    std::string key;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        if (i > 0) key += '.';
        key += std::to_string(cores[i]);
    }
    return key;
}
}  // namespace

MemOverheadResult characterize_memory_overhead(MeasureEngine& engine,
                                               const MemOverheadOptions& options) {
    SERVET_CHECK(options.overhead_epsilon > 0 && options.overhead_epsilon < 1);
    SERVET_CHECK(engine.platform() != nullptr);
    const int n_cores = engine.platform()->core_count();
    const std::vector<CorePair> pairs = probe_pairs(n_cores, options.only_with_core);

    // Batch 1: the isolated reference plus every pair, all independent.
    const std::string prefix = "mem/b" + std::to_string(options.array_bytes);
    std::vector<MeasureTask> tasks;
    tasks.reserve(1 + pairs.size());
    {
        MeasureTask task;
        task.key = prefix + "/ref/c0";
        task.body = [options](Platform* platform, msg::Network*) {
            return std::vector<double>{platform->copy_bandwidth(0, options.array_bytes)};
        };
        tasks.push_back(std::move(task));
    }
    for (const CorePair& pair : pairs) {
        MeasureTask task;
        task.key =
            prefix + "/pair/" + std::to_string(pair.a) + "-" + std::to_string(pair.b);
        task.body = [pair, options](Platform* platform, msg::Network*) {
            return platform->copy_bandwidth_concurrent({pair.a, pair.b}, options.array_bytes);
        };
        tasks.push_back(std::move(task));
    }
    obs::counter("phase.mem_overhead.measurements", obs::Stability::Stable).add(tasks.size());
    const std::vector<std::vector<double>> measured = engine.run(tasks);

    MemOverheadResult result;
    result.reference_bandwidth = measured[0][0];
    SERVET_CHECK(result.reference_bandwidth > 0);

    // Fig. 6 main loop: keep pairs below the reference and cluster similar
    // overheads into tiers.
    stats::SimilarityClusterer clusterer(options.cluster_tolerance);
    std::vector<CorePair> clustered_pairs;  // tag -> pair, parallel to clusterer tags
    const double cutoff = (1.0 - options.overhead_epsilon) * result.reference_bandwidth;
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        const BytesPerSecond b = measured[1 + pi][0];
        result.pairs.push_back({pairs[pi], b});
        if (b < cutoff) {
            clusterer.add(b, clustered_pairs.size());
            clustered_pairs.push_back(pairs[pi]);
        }
    }

    for (const stats::Cluster& cluster : clusterer.clusters()) {
        MemOverheadTier tier;
        tier.bandwidth = cluster.representative;
        for (std::size_t tag : cluster.members)
            tier.pairs.push_back(clustered_pairs[tag]);
        tier.groups = stats::groups_from_pairs(tier.pairs, n_cores);
        result.tiers.push_back(std::move(tier));
    }
    // Report tiers worst-first, like the paper's discussion (bus before cell).
    std::sort(result.tiers.begin(), result.tiers.end(),
              [](const MemOverheadTier& a, const MemOverheadTier& b) {
                  return a.bandwidth < b.bandwidth;
              });

    // Batch 2 — scalability (Fig. 9b): one representative group per tier is
    // enough (all groups of a tier behave alike by construction), every
    // active-set size of every tier measured independently. Task keys name
    // the active cores, which derive deterministically from batch 1.
    std::vector<MeasureTask> scal_tasks;
    std::vector<std::pair<std::size_t, std::size_t>> scal_owner;  // (tier, n-1)
    for (std::size_t t = 0; t < result.tiers.size(); ++t) {
        const MemOverheadTier& tier = result.tiers[t];
        if (tier.groups.empty()) continue;
        const std::vector<CoreId>& group = tier.groups.front();
        for (std::size_t n = 1; n <= group.size(); ++n) {
            const std::vector<CoreId> active(group.begin(),
                                             group.begin() + static_cast<std::ptrdiff_t>(n));
            MeasureTask task;
            task.key = prefix + "/scal/" + core_list_key(active);
            task.body = [active, options](Platform* platform, msg::Network*) {
                return platform->copy_bandwidth_concurrent(active, options.array_bytes);
            };
            scal_tasks.push_back(std::move(task));
            scal_owner.emplace_back(t, n - 1);
        }
    }
    obs::counter("phase.mem_overhead.measurements", obs::Stability::Stable)
        .add(scal_tasks.size());
    const std::vector<std::vector<double>> scal_measured = engine.run(scal_tasks);
    for (std::size_t t = 0; t < result.tiers.size(); ++t) {
        if (result.tiers[t].groups.empty()) continue;
        MemScalabilityCurve curve;
        curve.tier = t;
        curve.group = result.tiers[t].groups.front();
        curve.bandwidth_by_n.resize(curve.group.size());
        result.scalability.push_back(std::move(curve));
    }
    for (std::size_t i = 0; i < scal_tasks.size(); ++i) {
        const auto [tier, slot] = scal_owner[i];
        for (MemScalabilityCurve& curve : result.scalability) {
            if (curve.tier == tier) curve.bandwidth_by_n[slot] = scal_measured[i].front();
        }
    }

    SERVET_LOG_INFO("mem-overhead: ref %.2f GB/s, %zu tiers", result.reference_bandwidth / 1e9,
                    result.tiers.size());
    return result;
}

MemOverheadResult characterize_memory_overhead(Platform& platform,
                                               const MemOverheadOptions& options) {
    MeasureEngine engine(&platform, nullptr, nullptr, nullptr);
    return characterize_memory_overhead(engine, options);
}

}  // namespace servet::core
