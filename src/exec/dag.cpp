#include "exec/dag.hpp"

#include <condition_variable>
#include <memory>
#include <mutex>

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace servet::exec {

std::size_t TaskDag::index_of(const std::string& key) const {
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].key == key) return i;
    return nodes_.size();
}

void TaskDag::add(std::string key, std::function<void()> body,
                  const std::vector<std::string>& deps) {
    SERVET_CHECK_MSG(index_of(key) == nodes_.size(), "duplicate task key");
    Node node;
    node.key = std::move(key);
    node.body = std::move(body);
    for (const std::string& dep : deps) {
        const std::size_t d = index_of(dep);
        SERVET_CHECK_MSG(d < nodes_.size(), "dependency not added before dependent");
        node.deps.push_back(d);
        nodes_[d].dependents.push_back(nodes_.size());
    }
    nodes_.push_back(std::move(node));
}

namespace {

enum class State { Pending, Done, Failed };

bool ready(const std::vector<State>& state, const std::vector<std::size_t>& deps) {
    for (const std::size_t d : deps)
        if (state[d] != State::Done) return false;
    return true;
}

/// True when some dependency failed (or was itself skipped).
bool blocked(const std::vector<State>& state, const std::vector<std::size_t>& deps) {
    for (const std::size_t d : deps)
        if (state[d] == State::Failed) return true;
    return false;
}

}  // namespace

void TaskDag::run_serial() {
    std::vector<State> state(nodes_.size(), State::Pending);
    std::exception_ptr error;
    std::size_t error_index = 0;

    // Insertion order is a valid topological order (deps precede
    // dependents by construction), so one pass settles everything, and
    // skips propagate through chains naturally.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (blocked(state, nodes_[i].deps)) {
            state[i] = State::Failed;
            continue;
        }
        try {
            SERVET_TRACE_SPAN("dag/" + nodes_[i].key);
            nodes_[i].body();
            state[i] = State::Done;
        } catch (...) {
            state[i] = State::Failed;
            if (!error || i < error_index) {
                error = std::current_exception();
                error_index = i;
            }
        }
    }
    if (error) std::rethrow_exception(error);
}

void TaskDag::run_parallel(ThreadPool& pool) {
    struct Shared {
        std::mutex mutex;
        std::condition_variable all_settled;
        std::vector<State> state;
        std::size_t settled = 0;
        std::exception_ptr error;
        std::size_t error_index = 0;
        std::function<void(std::size_t)> spawn;
    };
    auto shared = std::make_shared<Shared>();
    shared->state.assign(nodes_.size(), State::Pending);

    // Settles node i with the given outcome and returns the tasks that
    // became runnable. Skips sweep transitively via a worklist: a failed
    // node fails its pending dependents, which fail theirs, and so on.
    const auto settle = [this, shared](std::size_t i, std::exception_ptr error) {
        std::vector<std::size_t> runnable;
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (error && (!shared->error || i < shared->error_index)) {
            shared->error = error;
            shared->error_index = i;
        }
        shared->state[i] = error ? State::Failed : State::Done;
        ++shared->settled;
        std::vector<std::size_t> sweep{i};
        while (!sweep.empty()) {
            const std::size_t s = sweep.back();
            sweep.pop_back();
            for (const std::size_t dep : nodes_[s].dependents) {
                if (shared->state[dep] != State::Pending) continue;
                if (blocked(shared->state, nodes_[dep].deps)) {
                    shared->state[dep] = State::Failed;
                    ++shared->settled;
                    sweep.push_back(dep);
                } else if (ready(shared->state, nodes_[dep].deps)) {
                    runnable.push_back(dep);
                }
            }
        }
        shared->all_settled.notify_all();
        return runnable;
    };

    shared->spawn = [this, shared, &pool, settle](std::size_t i) {
        pool.submit([this, shared, settle, i] {
            std::exception_ptr error;
            try {
                SERVET_TRACE_SPAN("dag/" + nodes_[i].key);
                nodes_[i].body();
            } catch (...) {
                error = std::current_exception();
            }
            for (const std::size_t next : settle(i, error)) shared->spawn(next);
        });
    };

    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].deps.empty()) shared->spawn(i);

    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->all_settled.wait(lock, [&] { return shared->settled == nodes_.size(); });
    if (shared->error) std::rethrow_exception(shared->error);
}

void TaskDag::run(ThreadPool* pool) {
    SERVET_CHECK_MSG(!ran_, "TaskDag::run is single-shot");
    ran_ = true;
    if (nodes_.empty()) return;
    obs::counter("exec.dag.nodes", obs::Stability::Stable).add(nodes_.size());
    if (pool == nullptr) {
        run_serial();
        return;
    }
    run_parallel(*pool);
}

}  // namespace servet::exec
