// Task identity for the deterministic measurement engine. Every
// independent measurement task carries a stable string key naming what it
// measures ("mcal/core=0/size=32768/..."); the key — never the scheduling
// order — seeds the task's private RNGs, which is what makes a parallel
// run bit-identical to a serial one.
#pragma once

#include <string_view>

#include "base/hash.hpp"

namespace servet::exec {

/// RNG seed of the task with this key. Depends only on the key text, so
/// two runs (or two schedulings of one run) agree on every task's noise.
[[nodiscard]] constexpr std::uint64_t seed_of(std::string_view key) {
    return mix64(fnv1a64(key));
}

}  // namespace servet::exec
