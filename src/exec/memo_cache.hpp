// Content-addressed measurement memo cache. A deterministic measurement
// is a pure function of (machine fingerprint, task key), so its result
// can be stored and replayed: repeated probes inside one suite run (the
// comm phase re-prices a pair the layer scan already measured), across
// runs in one process (warm reruns), and across servet_tool invocations
// via the text file format:
//
//   servet-memo 1
//   <key> <count> <v0> <v1> ...
//
// one record per line; keys contain no whitespace; values are C hexfloats
// ("%a"), which round-trip doubles exactly — byte-identical results are
// the whole point.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace servet::exec {

/// Outcome of MemoCache::load_file. Absent is routine (first run, cold
/// cache); Malformed means a file existed but was rejected — callers
/// should surface that, since silently dropping a memo repeats every
/// measurement.
enum class MemoLoad { Loaded, Absent, Malformed };

/// Strict rejects the whole file on any malformed record — right for
/// memo files produced by the atomic save_file, where corruption means
/// something rewrote the file. TornTailOk keeps the valid prefix and
/// discards everything from the first bad record on — right for the
/// incremental journal (journal_to), whose tail is legitimately torn
/// when the process was killed mid-append.
enum class MemoLoadMode { Strict, TornTailOk };

class MemoCache {
  public:
    MemoCache() = default;
    ~MemoCache();
    MemoCache(const MemoCache&) = delete;
    MemoCache& operator=(const MemoCache&) = delete;
    /// Returns the stored values, or nullopt (and counts a miss).
    [[nodiscard]] std::optional<std::vector<double>> lookup(const std::string& key) const;

    /// Stores the result of `key`. First store wins: a concurrent
    /// duplicate (two tasks racing on the same key) must carry the same
    /// values by determinism, so the duplicate is simply dropped.
    void store(const std::string& key, std::vector<double> values);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;

    /// Merge records from `path` (existing keys keep their values).
    /// Strict mode: a malformed file (bad header, truncated record,
    /// unparseable value) loads nothing, even from its valid prefix.
    /// TornTailOk mode: the valid prefix loads and the torn tail is
    /// dropped; only a bad header is Malformed.
    MemoLoad load_file(const std::string& path, MemoLoadMode mode = MemoLoadMode::Strict);

    /// Task-level write-ahead journal: from this call on, every fresh
    /// store() appends its record to `path` immediately (creating the
    /// file with its header when absent, appending to an existing one).
    /// Appends are plain write(2)s — they survive the process being
    /// killed, which is the crash model here; load the file back with
    /// MemoLoadMode::TornTailOk. Returns false when the file cannot be
    /// opened (the cache still works, it just isn't journaled).
    [[nodiscard]] bool journal_to(const std::string& path);

    /// Write every record to `path` (sorted by key, so the file is
    /// deterministic). Returns false on I/O failure. The write is atomic:
    /// a temporary sibling is renamed over `path`, so a crash mid-write
    /// can never leave a truncated memo where a good one stood.
    [[nodiscard]] bool save_file(const std::string& path) const;

  private:
    void journal_append_locked(const std::string& key, const std::vector<double>& values);

    mutable std::mutex mutex_;
    std::map<std::string, std::vector<double>> entries_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    int journal_fd_ = -1;
};

}  // namespace servet::exec
