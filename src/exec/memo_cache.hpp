// Content-addressed measurement memo cache. A deterministic measurement
// is a pure function of (machine fingerprint, task key), so its result
// can be stored and replayed: repeated probes inside one suite run (the
// comm phase re-prices a pair the layer scan already measured), across
// runs in one process (warm reruns), and across servet_tool invocations
// via the text file format:
//
//   servet-memo 1
//   <key> <count> <v0> <v1> ...
//
// one record per line; keys contain no whitespace; values are C hexfloats
// ("%a"), which round-trip doubles exactly — byte-identical results are
// the whole point.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace servet::exec {

/// Outcome of MemoCache::load_file. Absent is routine (first run, cold
/// cache); Malformed means a file existed but was rejected — callers
/// should surface that, since silently dropping a memo repeats every
/// measurement.
enum class MemoLoad { Loaded, Absent, Malformed };

class MemoCache {
  public:
    /// Returns the stored values, or nullopt (and counts a miss).
    [[nodiscard]] std::optional<std::vector<double>> lookup(const std::string& key) const;

    /// Stores the result of `key`. First store wins: a concurrent
    /// duplicate (two tasks racing on the same key) must carry the same
    /// values by determinism, so the duplicate is simply dropped.
    void store(const std::string& key, std::vector<double> values);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;

    /// Merge records from `path` (existing keys keep their values).
    /// A malformed file (bad header, truncated record, unparseable value)
    /// loads nothing, even from its valid prefix.
    MemoLoad load_file(const std::string& path);

    /// Write every record to `path` (sorted by key, so the file is
    /// deterministic). Returns false on I/O failure. The write is atomic:
    /// a temporary sibling is renamed over `path`, so a crash mid-write
    /// can never leave a truncated memo where a good one stood.
    [[nodiscard]] bool save_file(const std::string& path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<double>> entries_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

}  // namespace servet::exec
