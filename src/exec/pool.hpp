// Bounded thread pool with a cooperative parallel_for. The design rule
// that keeps nested use deadlock-free: the thread that calls parallel_for
// participates in executing the iteration space itself, and pool workers
// only assist. Even with every worker busy (or a zero-worker pool), the
// caller can always finish the loop alone, so a parallel_for issued from
// inside a pool task — e.g. a suite phase running as a DAG node that fans
// out its own probe tasks — completes without reserving threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace servet::exec {

class ThreadPool {
  public:
    /// Spawns `threads` workers (clamped to >= 1).
    explicit ThreadPool(int threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int thread_count() const { return static_cast<int>(workers_.size()); }

    /// Fire-and-forget execution. The callable must not throw — there is
    /// nobody to rethrow to; exceptions escaping it are logged and
    /// dropped. Use parallel_for (or TaskDag) for propagating work.
    void submit(std::function<void()> task);

    /// Runs body(0) ... body(n-1), in any order, and returns when all have
    /// finished. The calling thread executes iterations too (see file
    /// comment). If bodies throw, iterations not yet claimed are
    /// abandoned, in-flight ones are drained, and the exception with the
    /// smallest iteration index is rethrown here.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace servet::exec
