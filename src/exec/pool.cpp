#include "exec/pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "base/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace servet::exec {

namespace {

// Pool shape depends on --jobs, so these are observability-only metrics:
// a jobs=1 run submits nothing (the caller drains parallel_for itself).
obs::Counter& submitted_counter() {
    static obs::Counter& c =
        obs::counter("exec.pool.tasks_submitted", obs::Stability::Volatile);
    return c;
}

obs::Gauge& queue_hwm_gauge() {
    static obs::Gauge& g = obs::gauge("exec.pool.queue_hwm");
    return g;
}

/// Shared state of one parallel_for invocation. Claim/finish counters are
/// separate because an error abandons unclaimed iterations: completion
/// means "no more claims possible and every claimed iteration returned".
struct ForLoop {
    explicit ForLoop(std::size_t total) : n(total) {}

    const std::size_t n;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> claimed{0};
    std::atomic<std::size_t> finished{0};

    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
    std::size_t error_index = 0;

    void record_error(std::size_t index, std::exception_ptr e) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error || index < error_index) {
            error = std::move(e);
            error_index = index;
        }
        // Abandon unclaimed iterations; in-flight ones drain normally.
        next.store(n, std::memory_order_relaxed);
    }

    /// Claims and runs iterations until none are left.
    void drain(const std::function<void(std::size_t)>& body) {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            claimed.fetch_add(1, std::memory_order_relaxed);
            try {
                body(i);
            } catch (...) {
                record_error(i, std::current_exception());
            }
            std::lock_guard<std::mutex> lock(mutex);
            finished.fetch_add(1, std::memory_order_relaxed);
            done.notify_all();
        }
    }

    [[nodiscard]] bool complete() const {
        return next.load(std::memory_order_relaxed) >= n &&
               finished.load(std::memory_order_relaxed) ==
                   claimed.load(std::memory_order_relaxed);
    }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            SERVET_TRACE_SPAN("exec/task");
            task();
        } catch (...) {
            SERVET_LOG_ERROR("exec: exception escaped a submitted task (dropped)");
        }
    }
}

void ThreadPool::submit(std::function<void()> task) {
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        depth = queue_.size();
    }
    submitted_counter().increment();
    queue_hwm_gauge().record_max(depth);
    ready_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    auto loop = std::make_shared<ForLoop>(n);

    // Helpers assist if and when a worker is free; the caller never waits
    // for them to start.
    const std::size_t helpers =
        std::min<std::size_t>(workers_.size(), n > 0 ? n - 1 : 0);
    for (std::size_t h = 0; h < helpers; ++h)
        submit([loop, body] { loop->drain(body); });

    loop->drain(body);

    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->done.wait(lock, [&] { return loop->complete(); });
    if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace servet::exec
