#include "exec/memo_cache.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "base/fs.hpp"
#include "obs/metrics.hpp"

namespace servet::exec {

namespace {
constexpr const char* kHeader = "servet-memo 1";

// Stable: the engine dedups equal keys within a batch, so which lookups
// hit is a function of the task stream, not of scheduling.
obs::Counter& hit_counter() {
    static obs::Counter& c = obs::counter("exec.memo.hits", obs::Stability::Stable);
    return c;
}
obs::Counter& miss_counter() {
    static obs::Counter& c = obs::counter("exec.memo.misses", obs::Stability::Stable);
    return c;
}
obs::Counter& store_counter() {
    static obs::Counter& c = obs::counter("exec.memo.stores", obs::Stability::Stable);
    return c;
}

std::string fmt_hexfloat(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

std::string format_record(const std::string& key, const std::vector<double>& values) {
    std::string line = key + ' ' + std::to_string(values.size());
    for (const double v : values) {
        line += ' ';
        line += fmt_hexfloat(v);
    }
    line += '\n';
    return line;
}

/// Full write with EINTR retry; short writes continue where they left off.
bool write_all(int fd, const std::string& data) {
    const char* p = data.data();
    std::size_t remaining = data.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd, p, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    return true;
}
}  // namespace

MemoCache::~MemoCache() {
    if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::optional<std::vector<double>> MemoCache::lookup(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        miss_counter().increment();
        return std::nullopt;
    }
    ++hits_;
    hit_counter().increment();
    return it->second;
}

void MemoCache::store(const std::string& key, std::vector<double> values) {
    // The file format separates fields with whitespace; a key containing
    // any would corrupt every record after it on reload.
    SERVET_CHECK_MSG(key.find_first_of(" \t\n\r") == std::string::npos,
                     "memo key must not contain whitespace");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, fresh] = entries_.try_emplace(key, std::move(values));
    if (!fresh) return;
    store_counter().increment();
    journal_append_locked(it->first, it->second);
}

void MemoCache::journal_append_locked(const std::string& key,
                                      const std::vector<double>& values) {
    if (journal_fd_ < 0) return;
    // No fsync: the journal guards against the *process* dying (SIGKILL,
    // OOM), not against power loss — a lost memo line only costs one
    // re-measurement, never correctness, so the cheap write is the right
    // trade inside the measurement hot path.
    if (!write_all(journal_fd_, format_record(key, values))) {
        ::close(journal_fd_);
        journal_fd_ = -1;
    }
}

bool MemoCache::journal_to(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (journal_fd_ >= 0) ::close(journal_fd_);
    journal_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (journal_fd_ < 0) return false;
    struct stat st {};
    if (::fstat(journal_fd_, &st) != 0 ||
        (st.st_size == 0 && !write_all(journal_fd_, std::string(kHeader) + '\n'))) {
        ::close(journal_fd_);
        journal_fd_ = -1;
        return false;
    }
    return true;
}

std::size_t MemoCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t MemoCache::hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t MemoCache::misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

MemoLoad MemoCache::load_file(const std::string& path, MemoLoadMode mode) {
    std::string text;
    switch (read_file(path, &text)) {
        case FileRead::Absent:
            return MemoLoad::Absent;
        case FileRead::Error:
            return MemoLoad::Malformed;
        case FileRead::Ok:
            break;
    }
    // Every complete journal append ends in '\n', so an unterminated last
    // line is a torn write — and dangerous: a hexfloat truncated mid-token
    // can still parse as a valid (wrong) shorter number. Cut it off before
    // parsing rather than trusting the line parser to notice.
    if (mode == MemoLoadMode::TornTailOk && !text.empty() && text.back() != '\n')
        text.erase(text.find_last_of('\n') + 1);

    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kHeader) return MemoLoad::Malformed;

    std::map<std::string, std::vector<double>> loaded;
    bool torn = false;
    while (!torn && std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string key;
        std::size_t count = 0;
        std::vector<double> values;
        std::string token;
        bool ok = static_cast<bool>(fields >> key >> count);
        values.reserve(ok ? count : 0);
        for (std::size_t i = 0; ok && i < count; ++i) {
            ok = static_cast<bool>(fields >> token);
            if (!ok) break;
            char* end = nullptr;
            const double v = std::strtod(token.c_str(), &end);
            ok = end != token.c_str() && *end == '\0';
            if (ok) values.push_back(v);
        }
        if (!ok) {
            if (mode == MemoLoadMode::Strict) return MemoLoad::Malformed;
            torn = true;  // keep the valid prefix; the rest is a crash's tail
            break;
        }
        loaded.emplace(std::move(key), std::move(values));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, values] : loaded) entries_.try_emplace(key, std::move(values));
    return MemoLoad::Loaded;
}

bool MemoCache::save_file(const std::string& path) const {
    // Crash-atomic: the content is fsync'd under a temporary sibling name
    // and renamed into place, so readers see either the old file or the
    // complete new one, never a torn write — even across a power loss.
    std::string out = std::string(kHeader) + '\n';
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [key, values] : entries_) out += format_record(key, values);
    }
    return write_file_atomic(path, out);
}

}  // namespace servet::exec
