#include "exec/memo_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "obs/metrics.hpp"

namespace servet::exec {

namespace {
constexpr const char* kHeader = "servet-memo 1";

// Stable: the engine dedups equal keys within a batch, so which lookups
// hit is a function of the task stream, not of scheduling.
obs::Counter& hit_counter() {
    static obs::Counter& c = obs::counter("exec.memo.hits", obs::Stability::Stable);
    return c;
}
obs::Counter& miss_counter() {
    static obs::Counter& c = obs::counter("exec.memo.misses", obs::Stability::Stable);
    return c;
}
obs::Counter& store_counter() {
    static obs::Counter& c = obs::counter("exec.memo.stores", obs::Stability::Stable);
    return c;
}

std::string fmt_hexfloat(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}
}  // namespace

std::optional<std::vector<double>> MemoCache::lookup(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        miss_counter().increment();
        return std::nullopt;
    }
    ++hits_;
    hit_counter().increment();
    return it->second;
}

void MemoCache::store(const std::string& key, std::vector<double> values) {
    // The file format separates fields with whitespace; a key containing
    // any would corrupt every record after it on reload.
    SERVET_CHECK_MSG(key.find_first_of(" \t\n\r") == std::string::npos,
                     "memo key must not contain whitespace");
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.try_emplace(key, std::move(values)).second) store_counter().increment();
}

std::size_t MemoCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t MemoCache::hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t MemoCache::misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

MemoLoad MemoCache::load_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return MemoLoad::Absent;
    std::string line;
    if (!std::getline(in, line) || line != kHeader) return MemoLoad::Malformed;

    std::map<std::string, std::vector<double>> loaded;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string key;
        std::size_t count = 0;
        if (!(fields >> key >> count)) return MemoLoad::Malformed;
        std::vector<double> values;
        values.reserve(count);
        std::string token;
        for (std::size_t i = 0; i < count; ++i) {
            if (!(fields >> token)) return MemoLoad::Malformed;
            char* end = nullptr;
            const double v = std::strtod(token.c_str(), &end);
            if (end == token.c_str() || *end != '\0') return MemoLoad::Malformed;
            values.push_back(v);
        }
        loaded.emplace(std::move(key), std::move(values));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, values] : loaded) entries_.try_emplace(key, std::move(values));
    return MemoLoad::Loaded;
}

bool MemoCache::save_file(const std::string& path) const {
    // Write a temporary sibling first and rename it into place: rename(2)
    // within a directory is atomic, so readers see either the old file or
    // the complete new one, never a torn write.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) return false;
        out << kHeader << '\n';
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [key, values] : entries_) {
            out << key << ' ' << values.size();
            for (const double v : values) out << ' ' << fmt_hexfloat(v);
            out << '\n';
        }
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace servet::exec
