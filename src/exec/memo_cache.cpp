#include "exec/memo_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace servet::exec {

namespace {
constexpr const char* kHeader = "servet-memo 1";

// Stable: the engine dedups equal keys within a batch, so which lookups
// hit is a function of the task stream, not of scheduling.
obs::Counter& hit_counter() {
    static obs::Counter& c = obs::counter("exec.memo.hits", obs::Stability::Stable);
    return c;
}
obs::Counter& miss_counter() {
    static obs::Counter& c = obs::counter("exec.memo.misses", obs::Stability::Stable);
    return c;
}
obs::Counter& store_counter() {
    static obs::Counter& c = obs::counter("exec.memo.stores", obs::Stability::Stable);
    return c;
}

std::string fmt_hexfloat(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}
}  // namespace

std::optional<std::vector<double>> MemoCache::lookup(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        miss_counter().increment();
        return std::nullopt;
    }
    ++hits_;
    hit_counter().increment();
    return it->second;
}

void MemoCache::store(const std::string& key, std::vector<double> values) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.try_emplace(key, std::move(values)).second) store_counter().increment();
}

std::size_t MemoCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t MemoCache::hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t MemoCache::misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

bool MemoCache::load_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return false;
    std::string line;
    if (!std::getline(in, line) || line != kHeader) return false;

    std::map<std::string, std::vector<double>> loaded;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string key;
        std::size_t count = 0;
        if (!(fields >> key >> count)) return false;
        std::vector<double> values;
        values.reserve(count);
        std::string token;
        for (std::size_t i = 0; i < count; ++i) {
            if (!(fields >> token)) return false;
            char* end = nullptr;
            const double v = std::strtod(token.c_str(), &end);
            if (end == token.c_str() || *end != '\0') return false;
            values.push_back(v);
        }
        loaded.emplace(std::move(key), std::move(values));
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, values] : loaded) entries_.try_emplace(key, std::move(values));
    return true;
}

bool MemoCache::save_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << kHeader << '\n';
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, values] : entries_) {
        out << key << ' ' << values.size();
        for (const double v : values) out << ' ' << fmt_hexfloat(v);
        out << '\n';
    }
    return bool(out);
}

}  // namespace servet::exec
