// Deterministic task-DAG runner. Tasks are named, depend on earlier-added
// tasks, and run on a ThreadPool when one is given — independent tasks
// concurrently, dependents only after every dependency succeeded. Without
// a pool the DAG runs serially in a deterministic topological order
// (insertion order among ready tasks), which is the jobs=1 path of the
// suite. Task bodies may issue nested ThreadPool::parallel_for calls; the
// cooperative pool design makes that safe.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exec/pool.hpp"

namespace servet::exec {

class TaskDag {
  public:
    /// Adds a task. Every name in `deps` must have been added before
    /// (checked), which also rules out cycles by construction.
    void add(std::string key, std::function<void()> body,
             const std::vector<std::string>& deps = {});

    /// Runs every task. If a body throws, tasks depending on it
    /// (transitively) are skipped, independent tasks still run, and the
    /// first failure (by insertion order) is rethrown once all settled.
    /// The DAG is single-shot: run() may be called once.
    void run(ThreadPool* pool);

    [[nodiscard]] std::size_t task_count() const { return nodes_.size(); }

  private:
    struct Node {
        std::string key;
        std::function<void()> body;
        std::vector<std::size_t> deps;
        std::vector<std::size_t> dependents;
    };

    [[nodiscard]] std::size_t index_of(const std::string& key) const;
    void run_serial();
    void run_parallel(ThreadPool& pool);

    std::vector<Node> nodes_;
    bool ran_ = false;
};

}  // namespace servet::exec
