// Collective-algorithm selection from a profile: price each broadcast
// schedule with the measured per-layer latencies and concurrency
// slowdowns, pick the cheapest. The per-(collective, message-size)
// algorithm switch this enables is exactly the "several implementations
// ... adapt the behavior of an application" adoption path of Section V.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autotune/collectives.hpp"
#include "autotune/search/tunable.hpp"
#include "core/profile.hpp"

namespace servet::autotune {

struct CollectiveChoice {
    Schedule schedule;              ///< the winning schedule
    Seconds estimated_cost = 0;
    /// Every candidate's estimate, for reporting: (algorithm, cost).
    std::vector<std::pair<std::string, Seconds>> candidates;
};

/// Choose the cheapest broadcast schedule for `size`-byte payloads from
/// `root` over `cores`, according to the profile.
[[nodiscard]] CollectiveChoice choose_broadcast(const core::Profile& profile, CoreId root,
                                                const std::vector<CoreId>& cores, Bytes size);

/// Choose the cheapest allreduce: composed reduce+broadcast versus
/// recursive doubling (the latter only offered for power-of-two counts).
[[nodiscard]] CollectiveChoice choose_allreduce(const core::Profile& profile,
                                                const std::vector<CoreId>& cores, Bytes size);

/// Tunable view of an algorithm shoot-out: an `algorithm` enum axis over
/// the candidate schedules, each priced by estimate_schedule against the
/// profile. choose_broadcast/choose_allreduce are one-shot exhaustive
/// searches over this. nullptr for an empty candidate list.
[[nodiscard]] std::unique_ptr<search::Tunable> make_collective_tunable(
    const core::Profile& profile, std::string collective, std::vector<Schedule> schedules,
    Bytes size);

}  // namespace servet::autotune
