// Collective communication schedules. The optimizations Servet motivates
// (Section II cites MPI collective tuning on SMP clusters; Section V:
// "many programs provide several implementations of parts of their code
// ... Using the system parameters obtained by Servet it is possible to
// adapt the behavior of an application") need concrete alternatives to
// choose among. This module provides three broadcast schedules — flat,
// binomial tree, and a hierarchy-aware two-level tree built from measured
// communication layers — expressed as rounds of disjoint point-to-point
// transfers, plus execution/pricing of a schedule against any Network.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"
#include "core/profile.hpp"
#include "msg/network.hpp"

namespace servet::autotune {

/// One communication round: transfers that proceed concurrently. Within a
/// round each core sends at most one message and receives at most one
/// message (tree schedules are fully vertex-disjoint; the ring allgather
/// has every core both sending and receiving).
struct Round {
    /// Directed transfers as (source, destination) core pairs.
    std::vector<CorePair> transfers;
    /// Fraction of the collective's payload each transfer carries (1.0
    /// for whole-message trees; 1/n-style fractions for scatter/allgather
    /// phases of large-message algorithms).
    double size_factor = 1.0;
    /// Receive semantics when the schedule is *executed* with data:
    /// combining rounds element-wise accumulate the incoming payload
    /// (reduction phases); non-combining rounds overwrite (distribution
    /// phases). Cost estimation ignores this.
    bool combining = false;
};

/// A collective expressed as sequential rounds.
struct Schedule {
    std::string algorithm;
    std::vector<Round> rounds;

    /// Structural soundness for a broadcast from `root` over `cores`:
    /// every non-root core receives exactly once, every sender already
    /// holds the data, rounds are vertex-disjoint. Returns problems.
    [[nodiscard]] std::vector<std::string> validate_broadcast(
        CoreId root, const std::vector<CoreId>& cores) const;
};

/// Flat broadcast: the root sends to every other core, one per round.
/// The baseline every tree algorithm is measured against.
[[nodiscard]] Schedule broadcast_flat(CoreId root, const std::vector<CoreId>& cores);

/// Binomial-tree broadcast: log2(n) rounds, every data holder forwards.
[[nodiscard]] Schedule broadcast_binomial(CoreId root, const std::vector<CoreId>& cores);

/// Hierarchy-aware broadcast: cores are grouped by the profile's slowest
/// communication layer (e.g. nodes across InfiniBand); the root reaches
/// one leader per group through the slow layer (binomial over leaders),
/// then each group broadcasts internally (binomial over members). This is
/// the classic two-level SMP-cluster collective of the papers Servet
/// cites, driven by *measured* topology instead of documentation.
[[nodiscard]] Schedule broadcast_hierarchical(CoreId root, const std::vector<CoreId>& cores,
                                              const core::Profile& profile);

/// Topology-tiered broadcast for cluster profiles: cores are partitioned
/// along the profile's topology hierarchy (inter-group, inter-node,
/// intra-node — e.g. dragonfly group / router / node / core), and the
/// data descends one tier per phase: first among the top-level group
/// leaders, then to node leaders inside each group (all groups in
/// lockstep), finally within each node. Each phase's sub-algorithm
/// (binomial vs flat) is chosen by pricing it against the profile at
/// `size` — the per-tier selection the name records, e.g.
/// "tiered/binomial+binomial+flat". Unlike broadcast_hierarchical this
/// never classifies all O(n^2) pairs, so it scales to 10k ranks.
/// Degrades to a plain binomial when the profile has no topology block.
[[nodiscard]] Schedule broadcast_tiered(CoreId root, const std::vector<CoreId>& cores,
                                        const core::Profile& profile, Bytes size);

/// Reduction to `root`: the mirror image of a broadcast — the same tree
/// with transfers reversed and rounds replayed back-to-front, so leaves
/// push partial results upward and every link carries exactly one
/// message. Mirrors of the corresponding broadcast builders.
[[nodiscard]] Schedule reduce_binomial(CoreId root, const std::vector<CoreId>& cores);
[[nodiscard]] Schedule reduce_hierarchical(CoreId root, const std::vector<CoreId>& cores,
                                           const core::Profile& profile);

/// Structural soundness for a reduction to `root`: every non-root core
/// sends exactly once, no core sends before its own subtree has reported
/// in, rounds are vertex-disjoint.
[[nodiscard]] std::vector<std::string> validate_reduce(const Schedule& schedule, CoreId root,
                                                       const std::vector<CoreId>& cores);

/// Ring allgather: n-1 rounds; each core forwards the block it received
/// last round to its ring successor — the bandwidth-optimal schedule for
/// large blocks. `block_fraction` sets each transfer's share of the
/// collective payload (1/n when the payload is the concatenation of n
/// per-core blocks).
[[nodiscard]] Schedule allgather_ring(const std::vector<CoreId>& cores,
                                      double block_fraction = 1.0);

/// Van de Geijn large-message broadcast: binomial-scatter the payload
/// into n blocks (each round forwards half of what a holder owns), then
/// ring-allgather the blocks. Moves ~2x the payload in total but never
/// sends the whole message down one link, so for large messages its
/// bandwidth term beats the binomial tree's log2(n) full-size hops — the
/// classic size crossover an autotuned collective library switches on.
[[nodiscard]] Schedule broadcast_scatter_allgather(CoreId root,
                                                   const std::vector<CoreId>& cores);

/// Allreduce as the composition reduce-to-root + broadcast-from-root:
/// 2*log2(n) rounds of whole-payload transfers; works for any core count
/// and any root. The baseline every specialized allreduce is judged
/// against.
[[nodiscard]] Schedule allreduce_composed(CoreId root, const std::vector<CoreId>& cores,
                                          const core::Profile& profile);

/// Recursive-doubling allreduce: log2(n) rounds; in round k cores at
/// distance 2^k exchange full payloads and combine, so every core ends
/// with the result — half the depth of the composed form. Requires a
/// power-of-two core count (callers fall back to allreduce_composed
/// otherwise; choose_allreduce does this automatically).
[[nodiscard]] Schedule allreduce_recursive_doubling(const std::vector<CoreId>& cores);

/// Structural check: after the schedule, every core must have combined
/// every other core's contribution (tracked as contribution sets over the
/// exchange rounds).
[[nodiscard]] std::vector<std::string> validate_allreduce(const Schedule& schedule,
                                                          const std::vector<CoreId>& cores);

/// Execute (or price) a schedule: each round costs the concurrent latency
/// of its transfers on `network`; rounds are sequential. Returns total
/// one-message-deep completion time.
[[nodiscard]] Seconds run_schedule(msg::Network& network, const Schedule& schedule, Bytes size,
                                   int reps);

/// Price a schedule from a profile alone (no network): each round costs
/// the max over its transfers of the stored layer latency at `size`,
/// scaled by the layer's measured concurrency slowdown for the number of
/// same-layer transfers in the round. Used by the selector.
[[nodiscard]] Seconds estimate_schedule(const core::Profile& profile,
                                        const Schedule& schedule, Bytes size);

}  // namespace servet::autotune
