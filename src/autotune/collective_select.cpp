#include "autotune/collective_select.hpp"

#include <utility>

#include "autotune/search/strategy.hpp"
#include "base/check.hpp"

namespace servet::autotune {

namespace {

/// An algorithm shoot-out as a Tunable: one enum axis whose labels are
/// the candidate algorithm names, each point priced at construction by
/// estimate_schedule. Candidates keep their given order, so a cost tie
/// resolves to the earlier algorithm — same rule as the pre-search
/// selector.
class CollectiveTunable final : public search::Tunable {
  public:
    CollectiveTunable(std::string collective, std::vector<std::string> algorithms,
                      std::vector<Seconds> costs)
        : name_("collective." + std::move(collective)), costs_(std::move(costs)) {
        space_.add_enum("algorithm", std::move(algorithms));
    }

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] const search::ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        return costs_[static_cast<std::size_t>(config.at("algorithm"))];
    }

  private:
    std::string name_;
    std::vector<Seconds> costs_;
    search::ConfigSpace space_;
};

CollectiveChoice pick_cheapest(const core::Profile& profile, std::string collective,
                               std::vector<Schedule> schedules, Bytes size) {
    CollectiveChoice choice;
    auto tunable = make_collective_tunable(profile, std::move(collective), schedules, size);
    if (!tunable) return choice;  // empty candidate list: the default choice
    const auto result = search::run_search(*tunable, {});
    SERVET_CHECK(result.has_value());
    for (const auto& eval : result->trace)
        choice.candidates.emplace_back(
            schedules[eval.order - 1].algorithm,
            eval.prior.value_or(0.0));  // enumeration order == schedule order
    choice.estimated_cost = result->best_cost;
    choice.schedule =
        std::move(schedules[static_cast<std::size_t>(result->best.at("algorithm"))]);
    return choice;
}

}  // namespace

std::unique_ptr<search::Tunable> make_collective_tunable(const core::Profile& profile,
                                                         std::string collective,
                                                         std::vector<Schedule> schedules,
                                                         Bytes size) {
    if (schedules.empty()) return nullptr;
    std::vector<std::string> algorithms;
    std::vector<Seconds> costs;
    algorithms.reserve(schedules.size());
    costs.reserve(schedules.size());
    for (const Schedule& schedule : schedules) {
        algorithms.push_back(schedule.algorithm);
        costs.push_back(estimate_schedule(profile, schedule, size));
    }
    return std::make_unique<CollectiveTunable>(std::move(collective), std::move(algorithms),
                                               std::move(costs));
}

CollectiveChoice choose_broadcast(const core::Profile& profile, CoreId root,
                                  const std::vector<CoreId>& cores, Bytes size) {
    SERVET_CHECK(cores.size() >= 2);
    std::vector<Schedule> schedules;
    schedules.push_back(broadcast_flat(root, cores));
    schedules.push_back(broadcast_binomial(root, cores));
    if (profile.topology.enabled()) {
        // Cluster profile: the tiered schedule picks a sub-algorithm per
        // topology tier. broadcast_hierarchical is skipped — its O(n^2)
        // pair classification does not scale to the rank counts topology
        // profiles describe, and the tiered tree subsumes its two-level
        // structure.
        schedules.push_back(broadcast_tiered(root, cores, profile, size));
    } else {
        schedules.push_back(broadcast_hierarchical(root, cores, profile));
    }
    schedules.push_back(broadcast_scatter_allgather(root, cores));
    return pick_cheapest(profile, "broadcast", std::move(schedules), size);
}

CollectiveChoice choose_allreduce(const core::Profile& profile,
                                  const std::vector<CoreId>& cores, Bytes size) {
    SERVET_CHECK(cores.size() >= 2);
    std::vector<Schedule> schedules;
    schedules.push_back(allreduce_composed(cores.front(), cores, profile));
    if ((cores.size() & (cores.size() - 1)) == 0)
        schedules.push_back(allreduce_recursive_doubling(cores));
    return pick_cheapest(profile, "allreduce", std::move(schedules), size);
}

}  // namespace servet::autotune
