#include "autotune/collective_select.hpp"

#include "base/check.hpp"

namespace servet::autotune {

namespace {

CollectiveChoice pick_cheapest(const core::Profile& profile, std::vector<Schedule> schedules,
                               Bytes size);

}  // namespace

CollectiveChoice choose_broadcast(const core::Profile& profile, CoreId root,
                                  const std::vector<CoreId>& cores, Bytes size) {
    SERVET_CHECK(cores.size() >= 2);
    std::vector<Schedule> schedules;
    schedules.push_back(broadcast_flat(root, cores));
    schedules.push_back(broadcast_binomial(root, cores));
    if (profile.topology.enabled()) {
        // Cluster profile: the tiered schedule picks a sub-algorithm per
        // topology tier. broadcast_hierarchical is skipped — its O(n^2)
        // pair classification does not scale to the rank counts topology
        // profiles describe, and the tiered tree subsumes its two-level
        // structure.
        schedules.push_back(broadcast_tiered(root, cores, profile, size));
    } else {
        schedules.push_back(broadcast_hierarchical(root, cores, profile));
    }
    schedules.push_back(broadcast_scatter_allgather(root, cores));
    return pick_cheapest(profile, std::move(schedules), size);
}

CollectiveChoice choose_allreduce(const core::Profile& profile,
                                  const std::vector<CoreId>& cores, Bytes size) {
    SERVET_CHECK(cores.size() >= 2);
    std::vector<Schedule> schedules;
    schedules.push_back(allreduce_composed(cores.front(), cores, profile));
    if ((cores.size() & (cores.size() - 1)) == 0)
        schedules.push_back(allreduce_recursive_doubling(cores));
    return pick_cheapest(profile, std::move(schedules), size);
}

namespace {

CollectiveChoice pick_cheapest(const core::Profile& profile, std::vector<Schedule> schedules,
                               Bytes size) {
    CollectiveChoice choice;
    bool first = true;
    for (Schedule& schedule : schedules) {
        const Seconds cost = estimate_schedule(profile, schedule, size);
        choice.candidates.emplace_back(schedule.algorithm, cost);
        if (first || cost < choice.estimated_cost) {
            choice.estimated_cost = cost;
            choice.schedule = std::move(schedule);
            first = false;
        }
    }
    return choice;
}

}  // namespace

}  // namespace servet::autotune
