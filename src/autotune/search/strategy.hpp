// Budgeted one-shot search over a Tunable's ConfigSpace. Three
// strategies: exhaustive walks the space in enumeration order, random
// walks a seeded deterministic shuffle of it, and profile-guided ranks
// candidates by the tunable's analytic cost (the profile acting as a
// prior) before spending the measurement budget — so a good profile
// provably reduces evaluations-to-best, which bench_search_convergence
// pins. Candidate order is fixed before any evaluation runs and measured
// evaluations flow through core::MeasureEngine with config-derived task
// keys, so a --jobs 4 search trace is byte-identical to --jobs 1.
//
// Obs metrics: `autotune.search.evals` (Stable counter, evaluations
// performed) and `autotune.search.best_cost` (gauge, final best cost in
// nano-units, clamped at zero — rank-style negative costs read as 0).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "autotune/search/tunable.hpp"

namespace servet::core {
class MeasureEngine;
}

namespace servet::autotune::search {

enum class Strategy { Exhaustive, Random, Guided };

/// Stable wire names: "exhaustive", "random", "guided".
[[nodiscard]] std::string_view strategy_name(Strategy strategy);
[[nodiscard]] std::optional<Strategy> parse_strategy(std::string_view text);
[[nodiscard]] const std::vector<Strategy>& all_strategies();

struct SearchOptions {
    Strategy strategy = Strategy::Exhaustive;
    /// Maximum evaluations to spend; 0 = the whole admitted space.
    std::size_t budget = 0;
    /// Seeds Strategy::Random's candidate shuffle (only).
    std::uint64_t seed = 0x5eed;
    /// When non-null and the tunable is measurable, candidates are costed
    /// by Tunable::measure through this engine; otherwise by
    /// analytic_cost (nullopt pricing as +infinity).
    core::MeasureEngine* engine = nullptr;
};

/// One row of a search trace.
struct Evaluation {
    std::size_t order = 0;  ///< 1-based evaluation index
    std::string config_key;
    std::uint64_t config_hash = 0;
    std::optional<double> prior;  ///< analytic cost (the guided ranking key)
    double cost = 0;
    bool measured = false;
};

struct SearchResult {
    Config best;  ///< borrows the tunable's space — keep the tunable alive
    double best_cost = 0;
    std::size_t space_size = 0;  ///< candidates the space admits
    std::size_t evals = 0;
    std::size_t evals_to_best = 0;  ///< 1-based index of the first best-cost eval
    std::vector<Evaluation> trace;
};

/// Runs one budgeted search. nullopt when the space admits no candidate
/// — degenerate tunables (empty axes, over-constrained spaces) surface
/// here instead of producing a garbage best.
[[nodiscard]] std::optional<SearchResult> run_search(const Tunable& tunable,
                                                     const SearchOptions& options);

/// The search trace as deterministic JSON (keys in fixed order, %.17g
/// numbers): byte-identical for equal traces, so --jobs determinism is
/// testable by string comparison. `servet tune --trace` emits this.
[[nodiscard]] std::string trace_json(const Tunable& tunable, const SearchOptions& options,
                                     const SearchResult& result);

}  // namespace servet::autotune::search
