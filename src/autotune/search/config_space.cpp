#include "autotune/search/config_space.hpp"

#include "base/check.hpp"
#include "base/hash.hpp"

namespace servet::autotune::search {

namespace {

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

std::vector<std::int64_t> Axis::values() const {
    std::vector<std::int64_t> out;
    switch (kind) {
        case AxisKind::Int:
            for (std::int64_t v = lo; v <= hi; v += step) out.push_back(v);
            break;
        case AxisKind::Pow2:
            for (std::int64_t v = lo; v <= hi; v *= 2) out.push_back(v);
            break;
        case AxisKind::Enum:
            for (std::size_t i = 0; i < labels.size(); ++i)
                out.push_back(static_cast<std::int64_t>(i));
            break;
    }
    return out;
}

std::string Axis::render(std::int64_t value) const {
    if (kind == AxisKind::Enum) {
        if (value >= 0 && static_cast<std::size_t>(value) < labels.size())
            return labels[static_cast<std::size_t>(value)];
        return "<invalid:" + std::to_string(value) + ">";
    }
    return std::to_string(value);
}

std::int64_t Config::at(std::string_view axis) const {
    SERVET_CHECK(space_ != nullptr);
    const auto index = space_->axis_index(axis);
    SERVET_CHECK_MSG(index.has_value(), "unknown config axis");
    return values_[*index];
}

std::string Config::label(std::string_view axis) const {
    SERVET_CHECK(space_ != nullptr);
    const auto index = space_->axis_index(axis);
    SERVET_CHECK_MSG(index.has_value(), "unknown config axis");
    return space_->axis(*index).render(values_[*index]);
}

std::string Config::key() const {
    SERVET_CHECK(space_ != nullptr);
    std::string out;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const Axis& axis = space_->axis(i);
        if (i > 0) out += ',';
        out += axis.name;
        out += '=';
        out += axis.render(values_[i]);
    }
    return out;
}

std::uint64_t Config::hash() const {
    SERVET_CHECK(space_ != nullptr);
    Fingerprint fp;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        fp.add(std::string_view(space_->axis(i).name));
        fp.add(values_[i]);
    }
    return fp.value();
}

ConfigSpace& ConfigSpace::add_int(std::string name, std::int64_t lo, std::int64_t hi,
                                  std::int64_t step) {
    SERVET_CHECK_MSG(lo <= hi && step >= 1, "empty or ill-stepped int axis");
    Axis axis;
    axis.name = std::move(name);
    axis.kind = AxisKind::Int;
    axis.lo = lo;
    axis.hi = hi;
    axis.step = step;
    axes_.push_back(std::move(axis));
    return *this;
}

ConfigSpace& ConfigSpace::add_pow2(std::string name, std::int64_t lo, std::int64_t hi) {
    SERVET_CHECK_MSG(is_pow2(lo) && is_pow2(hi) && lo <= hi, "pow2 axis bounds");
    Axis axis;
    axis.name = std::move(name);
    axis.kind = AxisKind::Pow2;
    axis.lo = lo;
    axis.hi = hi;
    axes_.push_back(std::move(axis));
    return *this;
}

ConfigSpace& ConfigSpace::add_enum(std::string name, std::vector<std::string> labels) {
    SERVET_CHECK_MSG(!labels.empty(), "enum axis needs labels");
    Axis axis;
    axis.name = std::move(name);
    axis.kind = AxisKind::Enum;
    axis.labels = std::move(labels);
    axes_.push_back(std::move(axis));
    return *this;
}

ConfigSpace& ConfigSpace::add_constraint(std::string name, Constraint keep) {
    SERVET_CHECK(keep != nullptr);
    constraints_.emplace_back(std::move(name), std::move(keep));
    return *this;
}

const Axis& ConfigSpace::axis(std::size_t i) const {
    SERVET_CHECK(i < axes_.size());
    return axes_[i];
}

std::optional<std::size_t> ConfigSpace::axis_index(std::string_view name) const {
    for (std::size_t i = 0; i < axes_.size(); ++i)
        if (axes_[i].name == name) return i;
    return std::nullopt;
}

Config ConfigSpace::make(std::vector<std::int64_t> values) const {
    SERVET_CHECK_MSG(values.size() == axes_.size(), "config arity mismatch");
    return Config(this, std::move(values));
}

bool ConfigSpace::admits(const Config& config) const {
    for (const auto& [name, keep] : constraints_)
        if (!keep(config)) return false;
    return true;
}

std::vector<Config> ConfigSpace::enumerate() const {
    std::vector<Config> out;
    if (axes_.empty()) return out;
    std::vector<std::vector<std::int64_t>> axis_values;
    axis_values.reserve(axes_.size());
    for (const Axis& axis : axes_) {
        axis_values.push_back(axis.values());
        if (axis_values.back().empty()) return out;
    }
    // Odometer: the last axis spins fastest, so enumeration order matches
    // the lexicographic order of the value tuples.
    std::vector<std::size_t> odo(axes_.size(), 0);
    for (;;) {
        std::vector<std::int64_t> values(axes_.size());
        for (std::size_t i = 0; i < axes_.size(); ++i) values[i] = axis_values[i][odo[i]];
        Config config(this, std::move(values));
        if (admits(config)) out.push_back(std::move(config));
        std::size_t i = axes_.size();
        while (i > 0) {
            --i;
            if (++odo[i] < axis_values[i].size()) break;
            odo[i] = 0;
            if (i == 0) return out;
        }
    }
}

std::uint64_t ConfigSpace::space_hash() const {
    Fingerprint fp;
    fp.add(static_cast<std::uint64_t>(axes_.size()));
    for (const Axis& axis : axes_) {
        fp.add(std::string_view(axis.name));
        fp.add(static_cast<std::int64_t>(axis.kind));
        fp.add(axis.lo);
        fp.add(axis.hi);
        fp.add(axis.step);
        fp.add(static_cast<std::uint64_t>(axis.labels.size()));
        for (const std::string& label : axis.labels) fp.add(std::string_view(label));
    }
    fp.add(static_cast<std::uint64_t>(constraints_.size()));
    for (const auto& [name, keep] : constraints_) fp.add(std::string_view(name));
    return fp.value();
}

}  // namespace servet::autotune::search
