// The interface between a tunable computation and the search strategies.
// A Tunable declares its ConfigSpace and at least one way to cost a point
// in it: an analytic model from the machine's `core::Profile` (cheap,
// available to every legacy consumer), and optionally a measured
// evaluation against a live Platform/Network — run through the
// fault-tolerant core::MeasureEngine so measured searches inherit the
// suite's parallel ≡ serial determinism. The profile-guided strategy uses
// the analytic cost as a prior that orders measured evaluations.
#pragma once

#include <optional>
#include <string>

#include "autotune/search/config_space.hpp"
#include "base/check.hpp"

namespace servet {
class Platform;
namespace msg {
class Network;
}
}  // namespace servet

namespace servet::autotune::search {

class Tunable {
  public:
    virtual ~Tunable() = default;

    /// Stable identity; prefixes measurement task keys and trace output.
    [[nodiscard]] virtual std::string name() const = 0;

    /// The space to search. The returned reference (and the Tunable) must
    /// outlive every Config and SearchResult derived from it.
    [[nodiscard]] virtual const ConfigSpace& space() const = 0;

    /// Cost of `config` predicted from the machine profile, lower is
    /// better. nullopt when the profile lacks the data to price this
    /// point (such configs rank last under the guided strategy).
    [[nodiscard]] virtual std::optional<double> analytic_cost(const Config& config) const = 0;

    /// Whether measure() is implemented.
    [[nodiscard]] virtual bool measurable() const { return false; }

    /// Measured cost of `config`, lower is better. Called with a private
    /// replica of the search's platform/network (the shared originals
    /// when the substrate cannot fork); either may be null when the
    /// search runs without that substrate.
    [[nodiscard]] virtual double measure(const Config& config, Platform* platform,
                                         msg::Network* network) const {
        (void)config;
        (void)platform;
        (void)network;
        SERVET_CHECK_MSG(false, "Tunable::measure called on an analytic-only tunable");
        return 0.0;
    }
};

}  // namespace servet::autotune::search
