#include "autotune/search/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "base/check.hpp"
#include "base/hash.hpp"
#include "base/rng.hpp"
#include "core/measure.hpp"
#include "obs/metrics.hpp"

namespace servet::autotune::search {

namespace {

/// %.17g for exact round-trip; non-finite costs (an unpriced candidate
/// evaluated analytically) render as null so the trace stays valid JSON.
std::string format_double(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

struct Candidate {
    Config config;
    std::optional<double> prior;
};

/// Fixes the evaluation order before anything runs: enumeration order for
/// exhaustive, a seeded Fisher-Yates shuffle for random, a stable sort by
/// analytic prior (unpriced candidates last, enumeration order breaking
/// ties) for guided.
std::vector<Candidate> order_candidates(const Tunable& tunable, const SearchOptions& options) {
    std::vector<Candidate> candidates;
    for (Config& config : tunable.space().enumerate()) {
        Candidate c;
        c.prior = tunable.analytic_cost(config);
        c.config = std::move(config);
        candidates.push_back(std::move(c));
    }
    switch (options.strategy) {
        case Strategy::Exhaustive:
            break;
        case Strategy::Random: {
            Rng rng(mix64(options.seed));
            for (std::size_t i = candidates.size(); i > 1; --i) {
                const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
                std::swap(candidates[i - 1], candidates[j]);
            }
            break;
        }
        case Strategy::Guided:
            std::stable_sort(candidates.begin(), candidates.end(),
                             [](const Candidate& a, const Candidate& b) {
                                 if (a.prior.has_value() != b.prior.has_value())
                                     return a.prior.has_value();
                                 if (!a.prior.has_value()) return false;
                                 return *a.prior < *b.prior;
                             });
            break;
    }
    return candidates;
}

}  // namespace

std::string_view strategy_name(Strategy strategy) {
    switch (strategy) {
        case Strategy::Exhaustive: return "exhaustive";
        case Strategy::Random: return "random";
        case Strategy::Guided: return "guided";
    }
    return "unknown";
}

std::optional<Strategy> parse_strategy(std::string_view text) {
    for (const Strategy s : all_strategies())
        if (text == strategy_name(s)) return s;
    return std::nullopt;
}

const std::vector<Strategy>& all_strategies() {
    static const std::vector<Strategy> all = {Strategy::Exhaustive, Strategy::Random,
                                              Strategy::Guided};
    return all;
}

std::optional<SearchResult> run_search(const Tunable& tunable, const SearchOptions& options) {
    std::vector<Candidate> candidates = order_candidates(tunable, options);
    const std::size_t space_size = candidates.size();
    if (candidates.empty()) return std::nullopt;
    if (options.budget > 0 && candidates.size() > options.budget)
        candidates.resize(options.budget);

    const bool measured = options.engine != nullptr && tunable.measurable();
    std::vector<double> costs(candidates.size());
    if (measured) {
        std::vector<core::MeasureTask> tasks;
        tasks.reserve(candidates.size());
        for (const Candidate& c : candidates) {
            core::MeasureTask task;
            task.key = "tune:" + tunable.name() + ":" + c.config.key();
            Config config = c.config;
            task.body = [&tunable, config = std::move(config)](Platform* platform,
                                                               msg::Network* network) {
                return std::vector<double>{tunable.measure(config, platform, network)};
            };
            tasks.push_back(std::move(task));
        }
        const auto values = options.engine->run(tasks);
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            SERVET_CHECK(!values[i].empty());
            costs[i] = values[i][0];
        }
    } else {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            costs[i] = candidates[i].prior.value_or(std::numeric_limits<double>::infinity());
    }

    SearchResult result;
    result.space_size = space_size;
    result.evals = candidates.size();
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        Evaluation eval;
        eval.order = i + 1;
        eval.config_key = candidates[i].config.key();
        eval.config_hash = candidates[i].config.hash();
        eval.prior = candidates[i].prior;
        eval.cost = costs[i];
        eval.measured = measured;
        result.trace.push_back(std::move(eval));
        if (costs[i] < costs[best_index]) best_index = i;
    }
    result.best = candidates[best_index].config;
    result.best_cost = costs[best_index];
    result.evals_to_best = best_index + 1;

    // Registered once, schedule-invariant: the candidate list (and thus
    // the evaluation count) is fixed before any evaluation runs.
    static obs::Counter& evals_counter =
        obs::counter("autotune.search.evals", obs::Stability::Stable);
    static obs::Gauge& best_cost_gauge = obs::gauge("autotune.search.best_cost");
    evals_counter.add(result.evals);
    const double nano = result.best_cost * 1e9;
    best_cost_gauge.set(
        !(nano > 0) ? 0
                    : (nano >= 9e18 ? std::uint64_t{9000000000000000000ULL}
                                    : static_cast<std::uint64_t>(std::llround(nano))));
    return result;
}

std::string trace_json(const Tunable& tunable, const SearchOptions& options,
                       const SearchResult& result) {
    std::string out = "{";
    out += "\"tunable\":\"" + json_escape(tunable.name()) + "\"";
    out += ",\"strategy\":\"" + std::string(strategy_name(options.strategy)) + "\"";
    out += ",\"budget\":" + std::to_string(options.budget);
    out += ",\"seed\":" + std::to_string(options.seed);
    out += ",\"space\":" + std::to_string(result.space_size);
    out += ",\"evals\":" + std::to_string(result.evals);
    out += ",\"evals_to_best\":" + std::to_string(result.evals_to_best);
    out += ",\"best\":{\"key\":\"" + json_escape(result.best.key()) + "\"";
    out += ",\"cost\":" + format_double(result.best_cost) + "}";
    out += ",\"trace\":[";
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
        const Evaluation& eval = result.trace[i];
        if (i > 0) out += ',';
        out += "{\"i\":" + std::to_string(eval.order);
        out += ",\"key\":\"" + json_escape(eval.config_key) + "\"";
        out += ",\"prior\":" + (eval.prior ? format_double(*eval.prior) : "null");
        out += ",\"cost\":" + format_double(eval.cost);
        out += std::string(",\"measured\":") + (eval.measured ? "true" : "false") + "}";
    }
    out += "]}";
    return out;
}

}  // namespace servet::autotune::search
