// Declarative configuration spaces for the autotune search core. A
// ConfigSpace names the axes a tunable computation exposes (integer
// ranges, power-of-two ranges, enumerated choices) plus the constraints
// that prune infeasible combinations, and enumerates the admitted points
// in a deterministic odometer order — the same order on every run and
// every machine, which is what lets search traces be byte-compared
// across --jobs settings and pinned in golden tests. Points carry a
// stable textual key ("tile_i=32,mode=greedy") and a Fingerprint-based
// hash for content addressing through the measurement memo cache.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace servet::autotune::search {

class ConfigSpace;

enum class AxisKind { Int, Pow2, Enum };

/// One named dimension of a ConfigSpace. Values are always int64: an Int
/// axis walks [lo, hi] in `step` increments, a Pow2 axis walks the powers
/// of two in [lo, hi], and an Enum axis indexes into `labels`.
struct Axis {
    std::string name;
    AxisKind kind = AxisKind::Int;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t step = 1;
    std::vector<std::string> labels;  ///< Enum only; the value indexes this.

    /// Every value of the axis, ascending (Enum: 0..labels.size()-1).
    [[nodiscard]] std::vector<std::int64_t> values() const;
    /// Human rendering of a value: the label for Enum axes, the number
    /// otherwise.
    [[nodiscard]] std::string render(std::int64_t value) const;
};

/// One point of a ConfigSpace: axis values aligned with the space's axes.
/// Configs borrow their space — the ConfigSpace (in practice the Tunable
/// owning it) must outlive every Config and SearchResult derived from it.
class Config {
  public:
    /// Empty sentinel (no space); only assignment targets. Accessors
    /// CHECK against use.
    Config() = default;

    /// Value of the named axis. CHECK-fails on an unknown axis name —
    /// a typo here is a programming error, not a data error.
    [[nodiscard]] std::int64_t at(std::string_view axis) const;
    /// Rendered value of the named axis (the label for Enum axes).
    [[nodiscard]] std::string label(std::string_view axis) const;
    [[nodiscard]] const std::vector<std::int64_t>& values() const { return values_; }

    /// Stable textual identity, "axis=value" in axis order joined with
    /// commas: "tile_i=32,mode=greedy". Feeds task keys and traces.
    [[nodiscard]] std::string key() const;
    /// Stable structural hash over (axis name, value) pairs.
    [[nodiscard]] std::uint64_t hash() const;

  private:
    friend class ConfigSpace;
    Config(const ConfigSpace* space, std::vector<std::int64_t> values)
        : space_(space), values_(std::move(values)) {}

    const ConfigSpace* space_ = nullptr;
    std::vector<std::int64_t> values_;
};

/// A named set of axes plus declarative constraints. Build with the
/// add_* chain, then enumerate() the admitted points.
class ConfigSpace {
  public:
    /// Keeps a candidate when it returns true. Constraints are named so
    /// the space hash covers which prunes were active.
    using Constraint = std::function<bool(const Config&)>;

    /// Integer axis over [lo, hi] in `step` increments (lo <= hi, step >= 1).
    ConfigSpace& add_int(std::string name, std::int64_t lo, std::int64_t hi,
                         std::int64_t step = 1);
    /// Power-of-two axis over [lo, hi]; both bounds must be powers of two.
    ConfigSpace& add_pow2(std::string name, std::int64_t lo, std::int64_t hi);
    /// Enumerated axis; the value is an index into `labels`.
    ConfigSpace& add_enum(std::string name, std::vector<std::string> labels);
    ConfigSpace& add_constraint(std::string name, Constraint keep);

    [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
    [[nodiscard]] const Axis& axis(std::size_t i) const;
    [[nodiscard]] std::optional<std::size_t> axis_index(std::string_view name) const;

    /// A Config of this space from raw axis-aligned values (CHECKs the
    /// arity; values are not range-checked — tests use this to probe
    /// constraints directly).
    [[nodiscard]] Config make(std::vector<std::int64_t> values) const;
    /// True when every constraint keeps the config.
    [[nodiscard]] bool admits(const Config& config) const;

    /// Every admitted point in deterministic odometer order (first axis
    /// slowest, last axis fastest). Empty when any axis is empty or the
    /// constraints prune everything.
    [[nodiscard]] std::vector<Config> enumerate() const;

    /// Structural hash of the space: axes (name, kind, bounds, labels)
    /// plus constraint names.
    [[nodiscard]] std::uint64_t space_hash() const;

  private:
    std::vector<Axis> axes_;
    std::vector<std::pair<std::string, Constraint>> constraints_;
};

}  // namespace servet::autotune::search
