#include "autotune/collectives.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "base/check.hpp"
#include "stats/unionfind.hpp"

namespace servet::autotune {

std::vector<std::string> Schedule::validate_broadcast(
    CoreId root, const std::vector<CoreId>& cores) const {
    std::vector<std::string> problems;
    std::set<CoreId> holders = {root};
    const std::set<CoreId> all(cores.begin(), cores.end());
    if (!all.contains(root)) problems.push_back("root not among cores");

    for (std::size_t r = 0; r < rounds.size(); ++r) {
        std::set<CoreId> busy;
        std::set<CoreId> received_this_round;
        for (const CorePair& transfer : rounds[r].transfers) {
            if (!holders.contains(transfer.a))
                problems.push_back("round " + std::to_string(r) + ": sender " +
                                   std::to_string(transfer.a) + " does not hold the data");
            if (holders.contains(transfer.b))
                problems.push_back("round " + std::to_string(r) + ": receiver " +
                                   std::to_string(transfer.b) + " already has the data");
            if (!busy.insert(transfer.a).second || !busy.insert(transfer.b).second)
                problems.push_back("round " + std::to_string(r) + ": core used twice");
            if (!all.contains(transfer.a) || !all.contains(transfer.b))
                problems.push_back("round " + std::to_string(r) + ": unknown core");
            received_this_round.insert(transfer.b);
        }
        holders.insert(received_this_round.begin(), received_this_round.end());
    }
    for (CoreId core : cores) {
        if (!holders.contains(core))
            problems.push_back("core " + std::to_string(core) + " never receives");
    }
    return problems;
}

Schedule broadcast_flat(CoreId root, const std::vector<CoreId>& cores) {
    Schedule schedule;
    schedule.algorithm = "flat";
    for (CoreId core : cores) {
        if (core == root) continue;
        schedule.rounds.push_back({{{root, core}}});
    }
    return schedule;
}

namespace {

/// Binomial rounds over an ordered list whose first element is the
/// initial holder. Appended to `schedule`, offset into the given rounds
/// vector so independent trees can run in lockstep.
void binomial_rounds(const std::vector<CoreId>& ordered, std::vector<Round>& rounds) {
    std::size_t holders = 1;
    std::size_t round_index = 0;
    while (holders < ordered.size()) {
        if (rounds.size() <= round_index) rounds.emplace_back();
        Round& round = rounds[round_index];
        const std::size_t senders = std::min(holders, ordered.size() - holders);
        for (std::size_t s = 0; s < senders; ++s)
            round.transfers.push_back({ordered[s], ordered[holders + s]});
        holders += senders;
        ++round_index;
    }
}

std::vector<CoreId> rotate_to_front(const std::vector<CoreId>& cores, CoreId first) {
    std::vector<CoreId> ordered;
    ordered.push_back(first);
    for (CoreId core : cores)
        if (core != first) ordered.push_back(core);
    return ordered;
}

}  // namespace

Schedule broadcast_binomial(CoreId root, const std::vector<CoreId>& cores) {
    Schedule schedule;
    schedule.algorithm = "binomial";
    binomial_rounds(rotate_to_front(cores, root), schedule.rounds);
    return schedule;
}

Schedule broadcast_hierarchical(CoreId root, const std::vector<CoreId>& cores,
                                const core::Profile& profile) {
    Schedule schedule;
    schedule.algorithm = "hierarchical";
    if (profile.comm.size() < 2) {
        // One layer: no hierarchy to exploit; degrade to binomial.
        binomial_rounds(rotate_to_front(cores, root), schedule.rounds);
        return schedule;
    }

    // Group cores connected by anything faster than the slowest layer —
    // e.g. nodes, when the slowest layer is the inter-node network.
    const int slowest = static_cast<int>(profile.comm.size()) - 1;
    const CoreId max_core = *std::max_element(cores.begin(), cores.end());
    stats::UnionFind uf(static_cast<std::size_t>(max_core) + 1);
    for (std::size_t i = 0; i < cores.size(); ++i) {
        for (std::size_t j = i + 1; j < cores.size(); ++j) {
            const int layer = profile.comm_layer_of({cores[i], cores[j]});
            if (layer >= 0 && layer < slowest)
                uf.unite(static_cast<std::size_t>(cores[i]),
                         static_cast<std::size_t>(cores[j]));
        }
    }
    std::map<std::size_t, std::vector<CoreId>> groups;
    for (CoreId core : cores) groups[uf.find(static_cast<std::size_t>(core))].push_back(core);

    // Leaders: the root for its own group, the smallest member elsewhere.
    std::vector<CoreId> leaders;
    const std::size_t root_group = uf.find(static_cast<std::size_t>(root));
    leaders.push_back(root);
    for (const auto& [id, members] : groups) {
        if (id != root_group) leaders.push_back(members.front());
    }

    // Phase 1: binomial over leaders (the slow layer is crossed a minimal
    // number of times). Phase 2: all groups broadcast internally in
    // lockstep, sharing round slots.
    binomial_rounds(leaders, schedule.rounds);
    std::vector<Round> intra;
    for (const auto& [id, members] : groups) {
        const CoreId leader = id == root_group ? root : members.front();
        binomial_rounds(rotate_to_front(members, leader), intra);
    }
    schedule.rounds.insert(schedule.rounds.end(), intra.begin(), intra.end());
    return schedule;
}

namespace {

/// Flat rounds over an ordered list whose first element holds the data:
/// the leader sends to one member per round. Shares round slots like
/// binomial_rounds so lockstep trees overlay.
void flat_rounds(const std::vector<CoreId>& ordered, std::vector<Round>& rounds) {
    for (std::size_t i = 1; i < ordered.size(); ++i) {
        if (rounds.size() < i) rounds.emplace_back();
        rounds[i - 1].transfers.push_back({ordered[0], ordered[i]});
    }
}

/// Grouping keys of a node along the topology hierarchy, outermost first
/// (excluding the final per-node core stage). Empty when the shape gives
/// no grouping above the node.
std::vector<int> node_path(const core::ProfileTopology& topology, int node) {
    const auto& dims = topology.dims;
    if (topology.kind == "fat-tree" && dims.size() == 2 && dims[0] >= 2) {
        // Subtree under each switch level, root's children first.
        std::vector<int> path;
        int span = 1;
        for (int l = 1; l < dims[1]; ++l) span *= dims[0];
        for (; span >= 1; span /= dims[0]) path.push_back(node / span);
        return path;
    }
    if (topology.kind == "dragonfly" && dims.size() == 3 && dims[1] >= 1 && dims[2] >= 1) {
        const int per_group = dims[1] * dims[2];
        return {node / per_group, node / dims[2], node};
    }
    // Torus (and anything else): nodes are one flat tier.
    return {node};
}

}  // namespace

Schedule broadcast_tiered(CoreId root, const std::vector<CoreId>& cores,
                          const core::Profile& profile, Bytes size) {
    Schedule schedule;
    if (!profile.topology.enabled() || profile.topology.cores_per_node < 1) {
        schedule.algorithm = "tiered/binomial";
        binomial_rounds(rotate_to_front(cores, root), schedule.rounds);
        return schedule;
    }
    const int cpn = profile.topology.cores_per_node;
    const auto path_of = [&](CoreId core) { return node_path(profile.topology, core / cpn); };
    const std::size_t depth_count = path_of(root).size() + 1;  // + intra-node stage

    struct Group {
        std::vector<CoreId> members;
        CoreId leader;
    };
    std::vector<Group> current = {{cores, root}};
    std::string chosen;

    for (std::size_t depth = 0; depth < depth_count; ++depth) {
        // Leader-first order per group for this phase; descend in place.
        std::vector<std::vector<CoreId>> phase_orders;
        std::vector<Group> next;
        for (const Group& group : current) {
            if (depth + 1 == depth_count) {
                // Innermost phase: broadcast within each node.
                if (group.members.size() > 1)
                    phase_orders.push_back(rotate_to_front(group.members, group.leader));
                continue;
            }
            std::map<int, std::vector<CoreId>> parts;
            for (CoreId core : group.members)
                parts[path_of(core)[depth]].push_back(core);
            const int leader_key = path_of(group.leader)[depth];
            std::vector<CoreId> leaders = {group.leader};
            for (auto& [key, members] : parts) {
                const CoreId leader = key == leader_key ? group.leader : members.front();
                if (key != leader_key) leaders.push_back(leader);
                next.push_back({std::move(members), leader});
            }
            if (leaders.size() > 1) phase_orders.push_back(std::move(leaders));
        }
        current = std::move(next);
        if (phase_orders.empty()) continue;

        // Per-tier algorithm selection: price both sub-schedules for this
        // phase (all of the tier's lockstep trees together) and keep the
        // cheaper one.
        Schedule binomial_phase;
        Schedule flat_phase;
        for (const std::vector<CoreId>& ordered : phase_orders) {
            binomial_rounds(ordered, binomial_phase.rounds);
            flat_rounds(ordered, flat_phase.rounds);
        }
        const Seconds binomial_cost = estimate_schedule(profile, binomial_phase, size);
        const Seconds flat_cost = estimate_schedule(profile, flat_phase, size);
        Schedule& picked = flat_cost < binomial_cost ? flat_phase : binomial_phase;
        if (!chosen.empty()) chosen += '+';
        chosen += flat_cost < binomial_cost ? "flat" : "binomial";
        schedule.rounds.insert(schedule.rounds.end(),
                               std::make_move_iterator(picked.rounds.begin()),
                               std::make_move_iterator(picked.rounds.end()));
    }
    schedule.algorithm = "tiered/" + (chosen.empty() ? std::string("none") : chosen);
    return schedule;
}

namespace {
/// Reverse a broadcast schedule into its mirrored reduction.
Schedule mirror_schedule(const Schedule& broadcast, const std::string& name) {
    Schedule mirrored;
    mirrored.algorithm = name;
    for (auto it = broadcast.rounds.rbegin(); it != broadcast.rounds.rend(); ++it) {
        Round round;
        round.combining = true;  // reduction phases accumulate
        for (const CorePair& transfer : it->transfers)
            round.transfers.push_back({transfer.b, transfer.a});
        mirrored.rounds.push_back(std::move(round));
    }
    return mirrored;
}
}  // namespace

Schedule reduce_binomial(CoreId root, const std::vector<CoreId>& cores) {
    return mirror_schedule(broadcast_binomial(root, cores), "binomial-reduce");
}

Schedule reduce_hierarchical(CoreId root, const std::vector<CoreId>& cores,
                             const core::Profile& profile) {
    return mirror_schedule(broadcast_hierarchical(root, cores, profile),
                           "hierarchical-reduce");
}

std::vector<std::string> validate_reduce(const Schedule& schedule, CoreId root,
                                         const std::vector<CoreId>& cores) {
    // A reduction is sound iff its mirror is a sound broadcast: the
    // broadcast checker's "sender already holds the data" property becomes
    // "a core only reduces-up after its whole subtree reported in".
    return mirror_schedule(schedule, schedule.algorithm + "-mirrored")
        .validate_broadcast(root, cores);
}

Schedule allgather_ring(const std::vector<CoreId>& cores, double block_fraction) {
    SERVET_CHECK(cores.size() >= 2);
    SERVET_CHECK(block_fraction > 0 && block_fraction <= 1.0);
    Schedule schedule;
    schedule.algorithm = "ring-allgather";
    // Round r: core i forwards the block it received in round r-1 to its
    // successor. At the transfer level every round is the full ring of
    // neighbour sends, repeated n-1 times.
    const std::size_t n = cores.size();
    for (std::size_t r = 0; r + 1 < n; ++r) {
        Round round;
        round.size_factor = block_fraction;
        for (std::size_t i = 0; i < n; ++i)
            round.transfers.push_back({cores[i], cores[(i + 1) % n]});
        schedule.rounds.push_back(std::move(round));
    }
    return schedule;
}

Schedule broadcast_scatter_allgather(CoreId root, const std::vector<CoreId>& cores) {
    SERVET_CHECK(cores.size() >= 2);
    Schedule schedule;
    schedule.algorithm = "scatter-allgather";

    // Binomial scatter: in round k every holder forwards half of the block
    // range it still owns to a new core. log2(n) rounds with size factors
    // 1/2, 1/4, ... (each relative to the full payload; ranges shrink as
    // the tree deepens — the factor is the largest block moved that round,
    // which is what bounds the round's duration).
    const std::vector<CoreId> ordered = rotate_to_front(cores, root);
    const std::size_t n = ordered.size();
    std::size_t holders = 1;
    double factor = 0.5;
    while (holders < n) {
        Round round;
        round.size_factor = factor;
        const std::size_t senders = std::min(holders, n - holders);
        for (std::size_t s = 0; s < senders; ++s)
            round.transfers.push_back({ordered[s], ordered[holders + s]});
        holders += senders;
        factor = std::max(factor / 2.0, 1.0 / static_cast<double>(n));
        schedule.rounds.push_back(std::move(round));
    }

    // Ring allgather of the n scattered blocks (each 1/n of the payload).
    const Schedule gather = allgather_ring(ordered, 1.0 / static_cast<double>(n));
    schedule.rounds.insert(schedule.rounds.end(), gather.rounds.begin(),
                           gather.rounds.end());
    return schedule;
}

Schedule allreduce_composed(CoreId root, const std::vector<CoreId>& cores,
                            const core::Profile& profile) {
    Schedule schedule;
    schedule.algorithm = "composed-allreduce";
    const Schedule down = reduce_hierarchical(root, cores, profile);
    const Schedule up = broadcast_hierarchical(root, cores, profile);
    schedule.rounds = down.rounds;
    schedule.rounds.insert(schedule.rounds.end(), up.rounds.begin(), up.rounds.end());
    return schedule;
}

Schedule allreduce_recursive_doubling(const std::vector<CoreId>& cores) {
    const std::size_t n = cores.size();
    SERVET_CHECK_MSG(n >= 2 && (n & (n - 1)) == 0,
                     "recursive doubling needs a power-of-two core count");
    Schedule schedule;
    schedule.algorithm = "recursive-doubling";
    for (std::size_t distance = 1; distance < n; distance *= 2) {
        Round round;
        round.combining = true;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = i ^ distance;
            if (i < j) {
                // Both directions: a simultaneous pairwise exchange.
                round.transfers.push_back({cores[i], cores[j]});
                round.transfers.push_back({cores[j], cores[i]});
            }
        }
        schedule.rounds.push_back(std::move(round));
    }
    return schedule;
}

std::vector<std::string> validate_allreduce(const Schedule& schedule,
                                            const std::vector<CoreId>& cores) {
    std::vector<std::string> problems;
    // Contribution tracking: sends carry the sender's pre-round set;
    // receivers merge. Everyone must end holding everyone.
    std::map<CoreId, std::set<CoreId>> holding;
    for (CoreId core : cores) holding[core] = {core};
    for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
        const auto snapshot = holding;
        for (const CorePair& transfer : schedule.rounds[r].transfers) {
            if (!snapshot.contains(transfer.a) || !snapshot.contains(transfer.b)) {
                problems.push_back("round " + std::to_string(r) + ": unknown core");
                continue;
            }
            holding[transfer.b].insert(snapshot.at(transfer.a).begin(),
                                       snapshot.at(transfer.a).end());
        }
    }
    for (CoreId core : cores) {
        if (holding[core].size() != cores.size())
            problems.push_back("core " + std::to_string(core) + " misses contributions");
    }
    return problems;
}

Seconds run_schedule(msg::Network& network, const Schedule& schedule, Bytes size, int reps) {
    SERVET_CHECK(reps > 0);
    Seconds total = 0;
    for (const Round& round : schedule.rounds) {
        if (round.transfers.empty()) continue;
        const std::vector<Seconds> latencies =
            network.concurrent_latency(
                round.transfers,
                std::max<Bytes>(1, static_cast<Bytes>(round.size_factor *
                                                      static_cast<double>(size))),
                reps);
        total += *std::max_element(latencies.begin(), latencies.end());
    }
    return total;
}

Seconds estimate_schedule(const core::Profile& profile, const Schedule& schedule,
                          Bytes size) {
    // Classification and curve interpolation are cached across the whole
    // schedule: a cluster schedule at 10k ranks revisits the same (pair)
    // and (layer, bytes) lookups round after round, and the analytic
    // fallback behind comm_layer_of routes over the topology each time.
    std::map<CorePair, int> layer_cache;
    std::map<std::pair<int, Bytes>, Seconds> latency_cache;
    const auto layer_of = [&](CorePair pair) {
        const CorePair canonical = pair.canonical();
        const auto it = layer_cache.find(canonical);
        if (it != layer_cache.end()) return it->second;
        const int layer = profile.comm_layer_of(canonical);
        layer_cache.emplace(canonical, layer);
        return layer;
    };
    const auto latency_of = [&](int layer, Bytes bytes) {
        const auto key = std::make_pair(layer, bytes);
        const auto it = latency_cache.find(key);
        if (it != latency_cache.end()) return it->second;
        const auto base = profile.layer_latency(layer, bytes);
        SERVET_CHECK(base.has_value());
        latency_cache.emplace(key, *base);
        return *base;
    };

    Seconds total = 0;
    for (const Round& round : schedule.rounds) {
        if (round.transfers.empty()) continue;
        std::map<int, int> per_layer;
        for (const CorePair& transfer : round.transfers) ++per_layer[layer_of(transfer)];
        const Bytes bytes =
            std::max<Bytes>(1, static_cast<Bytes>(round.size_factor *
                                                  static_cast<double>(size)));

        Seconds round_time = 0;
        // Round duration = max over layers present, not over transfers:
        // every transfer of one layer at one size prices identically.
        for (const auto& [layer_index, count] : per_layer) {
            SERVET_CHECK_MSG(layer_index >= 0, "transfer pair not in the profile");
            const Seconds base = latency_of(layer_index, bytes);
            const auto& layer = profile.comm[static_cast<std::size_t>(layer_index)];
            double slowdown = 1.0;
            if (!layer.slowdown.empty()) {
                const auto index = std::min<std::size_t>(
                    static_cast<std::size_t>(count - 1), layer.slowdown.size() - 1);
                slowdown = std::max(1.0, layer.slowdown[index]);
            }
            round_time = std::max(round_time, base * slowdown);
        }
        total += round_time;
    }
    return total;
}

}  // namespace servet::autotune
