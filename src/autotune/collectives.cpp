#include "autotune/collectives.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "base/check.hpp"
#include "stats/unionfind.hpp"

namespace servet::autotune {

std::vector<std::string> Schedule::validate_broadcast(
    CoreId root, const std::vector<CoreId>& cores) const {
    std::vector<std::string> problems;
    std::set<CoreId> holders = {root};
    const std::set<CoreId> all(cores.begin(), cores.end());
    if (!all.contains(root)) problems.push_back("root not among cores");

    for (std::size_t r = 0; r < rounds.size(); ++r) {
        std::set<CoreId> busy;
        std::set<CoreId> received_this_round;
        for (const CorePair& transfer : rounds[r].transfers) {
            if (!holders.contains(transfer.a))
                problems.push_back("round " + std::to_string(r) + ": sender " +
                                   std::to_string(transfer.a) + " does not hold the data");
            if (holders.contains(transfer.b))
                problems.push_back("round " + std::to_string(r) + ": receiver " +
                                   std::to_string(transfer.b) + " already has the data");
            if (!busy.insert(transfer.a).second || !busy.insert(transfer.b).second)
                problems.push_back("round " + std::to_string(r) + ": core used twice");
            if (!all.contains(transfer.a) || !all.contains(transfer.b))
                problems.push_back("round " + std::to_string(r) + ": unknown core");
            received_this_round.insert(transfer.b);
        }
        holders.insert(received_this_round.begin(), received_this_round.end());
    }
    for (CoreId core : cores) {
        if (!holders.contains(core))
            problems.push_back("core " + std::to_string(core) + " never receives");
    }
    return problems;
}

Schedule broadcast_flat(CoreId root, const std::vector<CoreId>& cores) {
    Schedule schedule;
    schedule.algorithm = "flat";
    for (CoreId core : cores) {
        if (core == root) continue;
        schedule.rounds.push_back({{{root, core}}});
    }
    return schedule;
}

namespace {

/// Binomial rounds over an ordered list whose first element is the
/// initial holder. Appended to `schedule`, offset into the given rounds
/// vector so independent trees can run in lockstep.
void binomial_rounds(const std::vector<CoreId>& ordered, std::vector<Round>& rounds) {
    std::size_t holders = 1;
    std::size_t round_index = 0;
    while (holders < ordered.size()) {
        if (rounds.size() <= round_index) rounds.emplace_back();
        Round& round = rounds[round_index];
        const std::size_t senders = std::min(holders, ordered.size() - holders);
        for (std::size_t s = 0; s < senders; ++s)
            round.transfers.push_back({ordered[s], ordered[holders + s]});
        holders += senders;
        ++round_index;
    }
}

std::vector<CoreId> rotate_to_front(const std::vector<CoreId>& cores, CoreId first) {
    std::vector<CoreId> ordered;
    ordered.push_back(first);
    for (CoreId core : cores)
        if (core != first) ordered.push_back(core);
    return ordered;
}

}  // namespace

Schedule broadcast_binomial(CoreId root, const std::vector<CoreId>& cores) {
    Schedule schedule;
    schedule.algorithm = "binomial";
    binomial_rounds(rotate_to_front(cores, root), schedule.rounds);
    return schedule;
}

Schedule broadcast_hierarchical(CoreId root, const std::vector<CoreId>& cores,
                                const core::Profile& profile) {
    Schedule schedule;
    schedule.algorithm = "hierarchical";
    if (profile.comm.size() < 2) {
        // One layer: no hierarchy to exploit; degrade to binomial.
        binomial_rounds(rotate_to_front(cores, root), schedule.rounds);
        return schedule;
    }

    // Group cores connected by anything faster than the slowest layer —
    // e.g. nodes, when the slowest layer is the inter-node network.
    const int slowest = static_cast<int>(profile.comm.size()) - 1;
    const CoreId max_core = *std::max_element(cores.begin(), cores.end());
    stats::UnionFind uf(static_cast<std::size_t>(max_core) + 1);
    for (std::size_t i = 0; i < cores.size(); ++i) {
        for (std::size_t j = i + 1; j < cores.size(); ++j) {
            const int layer = profile.comm_layer_of({cores[i], cores[j]});
            if (layer >= 0 && layer < slowest)
                uf.unite(static_cast<std::size_t>(cores[i]),
                         static_cast<std::size_t>(cores[j]));
        }
    }
    std::map<std::size_t, std::vector<CoreId>> groups;
    for (CoreId core : cores) groups[uf.find(static_cast<std::size_t>(core))].push_back(core);

    // Leaders: the root for its own group, the smallest member elsewhere.
    std::vector<CoreId> leaders;
    const std::size_t root_group = uf.find(static_cast<std::size_t>(root));
    leaders.push_back(root);
    for (const auto& [id, members] : groups) {
        if (id != root_group) leaders.push_back(members.front());
    }

    // Phase 1: binomial over leaders (the slow layer is crossed a minimal
    // number of times). Phase 2: all groups broadcast internally in
    // lockstep, sharing round slots.
    binomial_rounds(leaders, schedule.rounds);
    std::vector<Round> intra;
    for (const auto& [id, members] : groups) {
        const CoreId leader = id == root_group ? root : members.front();
        binomial_rounds(rotate_to_front(members, leader), intra);
    }
    schedule.rounds.insert(schedule.rounds.end(), intra.begin(), intra.end());
    return schedule;
}

namespace {
/// Reverse a broadcast schedule into its mirrored reduction.
Schedule mirror_schedule(const Schedule& broadcast, const std::string& name) {
    Schedule mirrored;
    mirrored.algorithm = name;
    for (auto it = broadcast.rounds.rbegin(); it != broadcast.rounds.rend(); ++it) {
        Round round;
        round.combining = true;  // reduction phases accumulate
        for (const CorePair& transfer : it->transfers)
            round.transfers.push_back({transfer.b, transfer.a});
        mirrored.rounds.push_back(std::move(round));
    }
    return mirrored;
}
}  // namespace

Schedule reduce_binomial(CoreId root, const std::vector<CoreId>& cores) {
    return mirror_schedule(broadcast_binomial(root, cores), "binomial-reduce");
}

Schedule reduce_hierarchical(CoreId root, const std::vector<CoreId>& cores,
                             const core::Profile& profile) {
    return mirror_schedule(broadcast_hierarchical(root, cores, profile),
                           "hierarchical-reduce");
}

std::vector<std::string> validate_reduce(const Schedule& schedule, CoreId root,
                                         const std::vector<CoreId>& cores) {
    // A reduction is sound iff its mirror is a sound broadcast: the
    // broadcast checker's "sender already holds the data" property becomes
    // "a core only reduces-up after its whole subtree reported in".
    return mirror_schedule(schedule, schedule.algorithm + "-mirrored")
        .validate_broadcast(root, cores);
}

Schedule allgather_ring(const std::vector<CoreId>& cores, double block_fraction) {
    SERVET_CHECK(cores.size() >= 2);
    SERVET_CHECK(block_fraction > 0 && block_fraction <= 1.0);
    Schedule schedule;
    schedule.algorithm = "ring-allgather";
    // Round r: core i forwards the block it received in round r-1 to its
    // successor. At the transfer level every round is the full ring of
    // neighbour sends, repeated n-1 times.
    const std::size_t n = cores.size();
    for (std::size_t r = 0; r + 1 < n; ++r) {
        Round round;
        round.size_factor = block_fraction;
        for (std::size_t i = 0; i < n; ++i)
            round.transfers.push_back({cores[i], cores[(i + 1) % n]});
        schedule.rounds.push_back(std::move(round));
    }
    return schedule;
}

Schedule broadcast_scatter_allgather(CoreId root, const std::vector<CoreId>& cores) {
    SERVET_CHECK(cores.size() >= 2);
    Schedule schedule;
    schedule.algorithm = "scatter-allgather";

    // Binomial scatter: in round k every holder forwards half of the block
    // range it still owns to a new core. log2(n) rounds with size factors
    // 1/2, 1/4, ... (each relative to the full payload; ranges shrink as
    // the tree deepens — the factor is the largest block moved that round,
    // which is what bounds the round's duration).
    const std::vector<CoreId> ordered = rotate_to_front(cores, root);
    const std::size_t n = ordered.size();
    std::size_t holders = 1;
    double factor = 0.5;
    while (holders < n) {
        Round round;
        round.size_factor = factor;
        const std::size_t senders = std::min(holders, n - holders);
        for (std::size_t s = 0; s < senders; ++s)
            round.transfers.push_back({ordered[s], ordered[holders + s]});
        holders += senders;
        factor = std::max(factor / 2.0, 1.0 / static_cast<double>(n));
        schedule.rounds.push_back(std::move(round));
    }

    // Ring allgather of the n scattered blocks (each 1/n of the payload).
    const Schedule gather = allgather_ring(ordered, 1.0 / static_cast<double>(n));
    schedule.rounds.insert(schedule.rounds.end(), gather.rounds.begin(),
                           gather.rounds.end());
    return schedule;
}

Schedule allreduce_composed(CoreId root, const std::vector<CoreId>& cores,
                            const core::Profile& profile) {
    Schedule schedule;
    schedule.algorithm = "composed-allreduce";
    const Schedule down = reduce_hierarchical(root, cores, profile);
    const Schedule up = broadcast_hierarchical(root, cores, profile);
    schedule.rounds = down.rounds;
    schedule.rounds.insert(schedule.rounds.end(), up.rounds.begin(), up.rounds.end());
    return schedule;
}

Schedule allreduce_recursive_doubling(const std::vector<CoreId>& cores) {
    const std::size_t n = cores.size();
    SERVET_CHECK_MSG(n >= 2 && (n & (n - 1)) == 0,
                     "recursive doubling needs a power-of-two core count");
    Schedule schedule;
    schedule.algorithm = "recursive-doubling";
    for (std::size_t distance = 1; distance < n; distance *= 2) {
        Round round;
        round.combining = true;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = i ^ distance;
            if (i < j) {
                // Both directions: a simultaneous pairwise exchange.
                round.transfers.push_back({cores[i], cores[j]});
                round.transfers.push_back({cores[j], cores[i]});
            }
        }
        schedule.rounds.push_back(std::move(round));
    }
    return schedule;
}

std::vector<std::string> validate_allreduce(const Schedule& schedule,
                                            const std::vector<CoreId>& cores) {
    std::vector<std::string> problems;
    // Contribution tracking: sends carry the sender's pre-round set;
    // receivers merge. Everyone must end holding everyone.
    std::map<CoreId, std::set<CoreId>> holding;
    for (CoreId core : cores) holding[core] = {core};
    for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
        const auto snapshot = holding;
        for (const CorePair& transfer : schedule.rounds[r].transfers) {
            if (!snapshot.contains(transfer.a) || !snapshot.contains(transfer.b)) {
                problems.push_back("round " + std::to_string(r) + ": unknown core");
                continue;
            }
            holding[transfer.b].insert(snapshot.at(transfer.a).begin(),
                                       snapshot.at(transfer.a).end());
        }
    }
    for (CoreId core : cores) {
        if (holding[core].size() != cores.size())
            problems.push_back("core " + std::to_string(core) + " misses contributions");
    }
    return problems;
}

Seconds run_schedule(msg::Network& network, const Schedule& schedule, Bytes size, int reps) {
    SERVET_CHECK(reps > 0);
    Seconds total = 0;
    for (const Round& round : schedule.rounds) {
        if (round.transfers.empty()) continue;
        const std::vector<Seconds> latencies =
            network.concurrent_latency(
                round.transfers,
                std::max<Bytes>(1, static_cast<Bytes>(round.size_factor *
                                                      static_cast<double>(size))),
                reps);
        total += *std::max_element(latencies.begin(), latencies.end());
    }
    return total;
}

Seconds estimate_schedule(const core::Profile& profile, const Schedule& schedule,
                          Bytes size) {
    Seconds total = 0;
    for (const Round& round : schedule.rounds) {
        if (round.transfers.empty()) continue;
        std::map<int, int> per_layer;
        for (const CorePair& transfer : round.transfers)
            ++per_layer[profile.comm_layer_of(transfer)];

        Seconds round_time = 0;
        for (const CorePair& transfer : round.transfers) {
            const int layer_index = profile.comm_layer_of(transfer);
            SERVET_CHECK_MSG(layer_index >= 0, "transfer pair not in the profile");
            const auto base = profile.comm_latency(
                transfer, std::max<Bytes>(1, static_cast<Bytes>(
                                                 round.size_factor *
                                                 static_cast<double>(size))));
            SERVET_CHECK(base.has_value());
            const auto& layer = profile.comm[static_cast<std::size_t>(layer_index)];
            double slowdown = 1.0;
            if (!layer.slowdown.empty()) {
                const auto index = std::min<std::size_t>(
                    static_cast<std::size_t>(per_layer[layer_index] - 1),
                    layer.slowdown.size() - 1);
                slowdown = std::max(1.0, layer.slowdown[index]);
            }
            round_time = std::max(round_time, *base * slowdown);
        }
        total += round_time;
    }
    return total;
}

}  // namespace servet::autotune
