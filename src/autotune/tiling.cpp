#include "autotune/tiling.hpp"

#include <cmath>

#include "base/check.hpp"

namespace servet::autotune {

int max_square_tile(Bytes cache_bytes, const TilingRequest& request) {
    SERVET_CHECK(request.element_bytes > 0 && request.tiles_in_flight > 0);
    SERVET_CHECK(request.occupancy > 0 && request.occupancy <= 1.0);
    const double budget = request.occupancy * static_cast<double>(cache_bytes) /
                          static_cast<double>(request.tiles_in_flight);
    const double elements = budget / static_cast<double>(request.element_bytes);
    const int dim = static_cast<int>(std::floor(std::sqrt(elements)));
    return dim >= 1 ? dim : 1;
}

std::vector<TileChoice> plan_tiles(const core::Profile& profile,
                                   const TilingRequest& request) {
    SERVET_CHECK(request.physical_index_margin > 0 && request.physical_index_margin <= 1.0);
    std::vector<TileChoice> plan;
    plan.reserve(profile.caches.size());
    for (std::size_t level = 0; level < profile.caches.size(); ++level) {
        TileChoice choice;
        choice.level = level;
        choice.cache_size = profile.caches[level].size;
        // L1 is virtually indexed and usable to its budgeted capacity;
        // lower levels need conflict-miss headroom under random placement.
        const double margin = level == 0 ? 1.0 : request.physical_index_margin;
        const auto effective = static_cast<Bytes>(
            margin * static_cast<double>(choice.cache_size));
        choice.tile_elements = max_square_tile(effective, request);
        choice.tile_bytes = static_cast<Bytes>(choice.tile_elements) *
                            static_cast<Bytes>(choice.tile_elements) * request.element_bytes;
        plan.push_back(choice);
    }
    return plan;
}

}  // namespace servet::autotune
