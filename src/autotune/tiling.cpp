#include "autotune/tiling.hpp"

#include <cmath>
#include <utility>

#include "autotune/search/strategy.hpp"
#include "base/check.hpp"

namespace servet::autotune {

namespace {

/// One cache level's tile choice as a Tunable: the `tile` axis walks the
/// feasible square dimensions (the effective budget already folds in the
/// physical-index margin), the analytic cost is -tile so the largest
/// fitting tile wins any search order.
class TilingTunable final : public search::Tunable {
  public:
    TilingTunable(std::size_t level, int max_tile) {
        name_ = "tiling.L" + std::to_string(level + 1);
        space_.add_int("tile", 1, max_tile);
    }

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] const search::ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        return -static_cast<double>(config.at("tile"));
    }

  private:
    std::string name_;
    search::ConfigSpace space_;
};

}  // namespace

int max_square_tile(Bytes cache_bytes, const TilingRequest& request) {
    SERVET_CHECK(request.element_bytes > 0 && request.tiles_in_flight > 0);
    SERVET_CHECK(request.occupancy > 0 && request.occupancy <= 1.0);
    const double budget = request.occupancy * static_cast<double>(cache_bytes) /
                          static_cast<double>(request.tiles_in_flight);
    const double elements = budget / static_cast<double>(request.element_bytes);
    const int dim = static_cast<int>(std::floor(std::sqrt(elements)));
    return dim >= 1 ? dim : 1;
}

std::unique_ptr<search::Tunable> make_tiling_tunable(const core::Profile& profile,
                                                     std::size_t level,
                                                     const TilingRequest& request) {
    SERVET_CHECK(request.physical_index_margin > 0 && request.physical_index_margin <= 1.0);
    if (level >= profile.caches.size()) return nullptr;
    const Bytes size = profile.caches[level].size;
    if (size == 0) return nullptr;
    // L1 is virtually indexed and usable to its budgeted capacity; lower
    // levels need conflict-miss headroom under random placement.
    const double margin = level == 0 ? 1.0 : request.physical_index_margin;
    const auto effective = static_cast<Bytes>(margin * static_cast<double>(size));
    return std::make_unique<TilingTunable>(level, max_square_tile(effective, request));
}

std::vector<TileChoice> plan_tiles(const core::Profile& profile,
                                   const TilingRequest& request) {
    SERVET_CHECK(request.physical_index_margin > 0 && request.physical_index_margin <= 1.0);
    std::vector<TileChoice> plan;
    plan.reserve(profile.caches.size());
    for (std::size_t level = 0; level < profile.caches.size(); ++level) {
        const auto tunable = make_tiling_tunable(profile, level, request);
        if (!tunable) continue;  // undetected (zero) size: nothing to tile for
        const auto result = search::run_search(*tunable, {});
        SERVET_CHECK(result.has_value());
        TileChoice choice;
        choice.level = level;
        choice.cache_size = profile.caches[level].size;
        choice.tile_elements = static_cast<int>(result->best.at("tile"));
        choice.tile_bytes = static_cast<Bytes>(choice.tile_elements) *
                            static_cast<Bytes>(choice.tile_elements) * request.element_bytes;
        plan.push_back(choice);
    }
    return plan;
}

}  // namespace servet::autotune
