#include "autotune/aggregation.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace servet::autotune {

std::optional<AggregationAdvice> advise_aggregation(const core::Profile& profile,
                                                    CorePair pair, Bytes size, int count) {
    SERVET_CHECK(count >= 1 && size > 0);
    const int layer_index = profile.comm_layer_of(pair);
    if (layer_index < 0) return std::nullopt;
    const core::ProfileCommLayer& layer =
        profile.comm[static_cast<std::size_t>(layer_index)];

    const auto isolated = profile.comm_latency(pair, size);
    const auto gathered = profile.comm_latency(pair, size * static_cast<Bytes>(count));
    if (!isolated || !gathered) return std::nullopt;

    // Concurrent slowdown from the measured curve; clamp to the last
    // measured point when `count` exceeds the sweep.
    double slowdown = 1.0;
    if (!layer.slowdown.empty()) {
        const std::size_t index = std::min(static_cast<std::size_t>(count - 1),
                                           layer.slowdown.size() - 1);
        slowdown = std::max(1.0, layer.slowdown[index]);
    }

    AggregationAdvice advice;
    advice.scattered_cost = *isolated * slowdown;
    advice.aggregated_cost = *gathered;
    advice.benefit = advice.scattered_cost / advice.aggregated_cost;
    advice.aggregate = advice.benefit > 1.0;
    return advice;
}

}  // namespace servet::autotune
