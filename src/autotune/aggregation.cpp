#include "autotune/aggregation.hpp"

#include <algorithm>

#include "autotune/search/strategy.hpp"
#include "base/check.hpp"

namespace servet::autotune {

namespace {

/// The two-option aggregation decision as a Tunable. Costs are
/// precomputed from the profile at construction; "scattered" enumerates
/// first so a cost tie keeps it (the advisor aggregates only on strict
/// benefit).
class AggregationTunable final : public search::Tunable {
  public:
    AggregationTunable(Seconds scattered_cost, Seconds aggregated_cost)
        : scattered_cost_(scattered_cost), aggregated_cost_(aggregated_cost) {
        space_.add_enum("mode", {"scattered", "aggregated"});
    }

    [[nodiscard]] std::string name() const override { return "aggregation"; }
    [[nodiscard]] const search::ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        return config.label("mode") == "scattered" ? scattered_cost_ : aggregated_cost_;
    }

  private:
    Seconds scattered_cost_;
    Seconds aggregated_cost_;
    search::ConfigSpace space_;
};

/// Prices both options, nullopt when the profile lacks the data.
std::optional<AggregationAdvice> price_options(const core::Profile& profile, CorePair pair,
                                               Bytes size, int count) {
    SERVET_CHECK(count >= 1 && size > 0);
    const int layer_index = profile.comm_layer_of(pair);
    if (layer_index < 0) return std::nullopt;
    const core::ProfileCommLayer& layer =
        profile.comm[static_cast<std::size_t>(layer_index)];

    const auto isolated = profile.comm_latency(pair, size);
    const auto gathered = profile.comm_latency(pair, size * static_cast<Bytes>(count));
    if (!isolated || !gathered) return std::nullopt;

    // Concurrent slowdown from the measured curve; clamp to the last
    // measured point when `count` exceeds the sweep.
    double slowdown = 1.0;
    if (!layer.slowdown.empty()) {
        const std::size_t index = std::min(static_cast<std::size_t>(count - 1),
                                           layer.slowdown.size() - 1);
        slowdown = std::max(1.0, layer.slowdown[index]);
    }

    AggregationAdvice advice;
    advice.scattered_cost = *isolated * slowdown;
    advice.aggregated_cost = *gathered;
    advice.benefit = advice.scattered_cost / advice.aggregated_cost;
    return advice;
}

}  // namespace

std::unique_ptr<search::Tunable> make_aggregation_tunable(const core::Profile& profile,
                                                          CorePair pair, Bytes size,
                                                          int count) {
    const auto priced = price_options(profile, pair, size, count);
    if (!priced) return nullptr;
    return std::make_unique<AggregationTunable>(priced->scattered_cost,
                                                priced->aggregated_cost);
}

std::optional<AggregationAdvice> advise_aggregation(const core::Profile& profile,
                                                    CorePair pair, Bytes size, int count) {
    auto advice = price_options(profile, pair, size, count);
    if (!advice) return std::nullopt;
    const auto tunable = make_aggregation_tunable(profile, pair, size, count);
    SERVET_CHECK(tunable != nullptr);
    const auto result = search::run_search(*tunable, {});
    SERVET_CHECK(result.has_value());
    advice->aggregate = result->best.label("mode") == "aggregated";
    return advice;
}

}  // namespace servet::autotune
