#include "autotune/exec_collectives.hpp"

#include <cstring>
#include <thread>

#include "base/check.hpp"

namespace servet::autotune {

namespace {

/// The transfers core `core` takes part in, in round order, tagged with
/// its role. Tree rounds are vertex-disjoint, so at most one per round.
struct Step {
    std::size_t round;
    bool is_sender;
    CoreId peer;
};

std::vector<Step> steps_for(const Schedule& schedule, CoreId core) {
    // Within a round, sends come before receives: an exchange round (the
    // core both sends and receives, as in recursive doubling) must ship
    // the pre-round value, and buffered sends make send-first
    // deadlock-free.
    std::vector<Step> steps;
    for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
        for (const CorePair& transfer : schedule.rounds[r].transfers)
            if (transfer.a == core) steps.push_back({r, true, transfer.b});
        for (const CorePair& transfer : schedule.rounds[r].transfers)
            if (transfer.b == core) steps.push_back({r, false, transfer.a});
    }
    return steps;
}

}  // namespace

std::map<CoreId, std::vector<std::uint8_t>> execute_broadcast(
    msg::CommWorld& world, const Schedule& schedule, CoreId root,
    const std::vector<CoreId>& cores, std::span<const std::uint8_t> payload) {
    for (CoreId core : cores) SERVET_CHECK(core >= 0 && core < world.size());

    std::map<CoreId, std::vector<std::uint8_t>> buffers;
    for (CoreId core : cores) buffers[core] = {};
    buffers[root].assign(payload.begin(), payload.end());

    std::vector<std::thread> threads;
    threads.reserve(cores.size());
    for (CoreId core : cores) {
        threads.emplace_back([&, core] {
            msg::Endpoint endpoint = world.endpoint(core);
            std::vector<std::uint8_t>& buffer = buffers[core];
            for (const Step& step : steps_for(schedule, core)) {
                if (step.is_sender) {
                    // Dataflow guarantee: a valid broadcast schedule only
                    // makes a core send after it received (or is the root).
                    endpoint.send(step.peer, buffer);
                } else {
                    endpoint.recv(step.peer, buffer);
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    return buffers;
}

std::map<CoreId, std::vector<std::uint8_t>> execute_broadcast_stepped(
    msg::CommWorld& world, const Schedule& schedule, CoreId root,
    const std::vector<CoreId>& cores, std::span<const std::uint8_t> payload) {
    for (CoreId core : cores) SERVET_CHECK(core >= 0 && core < world.size());

    std::map<CoreId, std::vector<std::uint8_t>> buffers;
    for (CoreId core : cores) buffers[core] = {};
    buffers[root].assign(payload.begin(), payload.end());

    for (const Round& round : schedule.rounds) {
        // Sends first: buffered eager delivery means every message of the
        // round is in its destination mailbox before any recv below, so
        // the single thread never blocks and transfer order within the
        // round cannot matter (a round's senders hold pre-round data by
        // schedule validity).
        for (const CorePair& transfer : round.transfers)
            world.endpoint(transfer.a).send(transfer.b, buffers[transfer.a]);
        for (const CorePair& transfer : round.transfers)
            world.endpoint(transfer.b).recv(transfer.a, buffers[transfer.b]);
    }
    return buffers;
}

std::map<CoreId, std::vector<double>> execute_allreduce_sum(
    msg::CommWorld& world, const Schedule& schedule, const std::vector<CoreId>& cores,
    const std::map<CoreId, std::vector<double>>& contributions) {
    SERVET_CHECK(!cores.empty());
    const std::size_t length = contributions.at(cores.front()).size();
    for (CoreId core : cores) {
        SERVET_CHECK(core >= 0 && core < world.size());
        SERVET_CHECK_MSG(contributions.at(core).size() == length,
                         "all contributions must share one length");
    }

    std::map<CoreId, std::vector<double>> accumulators = contributions;

    std::vector<std::thread> threads;
    threads.reserve(cores.size());
    for (CoreId core : cores) {
        threads.emplace_back([&, core] {
            msg::Endpoint endpoint = world.endpoint(core);
            std::vector<double>& accumulator = accumulators[core];
            std::vector<std::uint8_t> incoming;
            for (const Step& step : steps_for(schedule, core)) {
                if (step.is_sender) {
                    // steps_for orders sends before receives per round, so
                    // exchange rounds ship the pre-round accumulator.
                    endpoint.send(step.peer,
                                  {reinterpret_cast<const std::uint8_t*>(accumulator.data()),
                                   accumulator.size() * sizeof(double)});
                } else {
                    endpoint.recv(step.peer, incoming);
                    SERVET_CHECK(incoming.size() == length * sizeof(double));
                    const auto* values = reinterpret_cast<const double*>(incoming.data());
                    if (schedule.rounds[step.round].combining) {
                        for (std::size_t i = 0; i < length; ++i) accumulator[i] += values[i];
                    } else {
                        accumulator.assign(values, values + length);
                    }
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    return accumulators;
}

std::vector<double> execute_reduce_sum(
    msg::CommWorld& world, const Schedule& schedule, CoreId root,
    const std::vector<CoreId>& cores,
    const std::map<CoreId, std::vector<double>>& contributions) {
    return execute_allreduce_sum(world, schedule, cores, contributions).at(root);
}

}  // namespace servet::autotune
