// Tile-size selection from the measured cache sizes — the paper's first
// motivating optimization ("Tiling is one of the most widely used
// optimization techniques and our suite can help ... by providing all the
// cache sizes in a portable way", Section V). Given how many working
// arrays a tiled kernel keeps live (3 square tiles for C += A*B) the
// selector returns the largest tile whose footprint fits a chosen fraction
// of a cache level, per level.
#pragma once

#include <memory>
#include <vector>

#include "autotune/search/tunable.hpp"
#include "base/types.hpp"
#include "core/profile.hpp"

namespace servet::autotune {

struct TilingRequest {
    /// Bytes per array element (8 for double).
    std::size_t element_bytes = 8;
    /// Square tiles simultaneously live in cache (3 for C += A*B).
    int tiles_in_flight = 3;
    /// Fraction of the cache the tiles may occupy; the rest is left for
    /// everything else the kernel touches.
    double occupancy = 0.75;
    /// Extra derating applied to every level below L1. Those levels are
    /// physically indexed (Section III-A2): with random page placement a
    /// working set near capacity already overflows some page sets and
    /// conflict-misses, so tiles must leave headroom. 0.55 keeps the
    /// expected page-set occupancy comfortably under the associativity.
    double physical_index_margin = 0.55;
};

struct TileChoice {
    std::size_t level = 0;       ///< cache level the tile targets (0 = L1)
    Bytes cache_size = 0;
    int tile_elements = 0;       ///< square tile dimension, in elements
    Bytes tile_bytes = 0;        ///< footprint of one tile
};

/// Largest square tile dimension such that `tiles_in_flight` tiles fit in
/// `occupancy * cache_bytes`. At least 1.
[[nodiscard]] int max_square_tile(Bytes cache_bytes, const TilingRequest& request);

/// One TileChoice per detected cache level (the multi-level tiling plan of
/// a blocked kernel). Empty when the profile has no cache estimates.
/// Levels whose size was not detected (0) are skipped — a zero-byte
/// budget has no meaningful tile. Implemented as a one-shot exhaustive
/// search over the level's TilingTunable.
[[nodiscard]] std::vector<TileChoice> plan_tiles(const core::Profile& profile,
                                                 const TilingRequest& request = {});

/// Tunable view of one cache level's tile-size choice: an integer `tile`
/// axis over the feasible square dimensions with analytic cost -tile
/// (the largest fitting tile wins), so an exhaustive search reproduces
/// max_square_tile exactly while gaining budgets and trace reporting.
/// nullptr when the level is absent or its size undetected (0).
[[nodiscard]] std::unique_ptr<search::Tunable> make_tiling_tunable(
    const core::Profile& profile, std::size_t level, const TilingRequest& request = {});

}  // namespace servet::autotune
