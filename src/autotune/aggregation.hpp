// Message-aggregation advice from the measured layer scalability. The
// paper's observation (Section III-D): "Sending concurrently N messages of
// size S usually costs more than sending one message of size N*S. Thus, it
// is possible to optimize the communication performance by gathering
// messages in poorly scalable systems." This advisor prices both options
// from the profile and says which wins.
#pragma once

#include <memory>

#include "autotune/search/tunable.hpp"
#include "base/types.hpp"
#include "core/profile.hpp"

namespace servet::autotune {

struct AggregationAdvice {
    bool aggregate = false;
    Seconds scattered_cost = 0;   ///< N concurrent messages of `size`
    Seconds aggregated_cost = 0;  ///< one message of N * `size`
    double benefit = 0.0;         ///< scattered / aggregated (>1 favours gathering)
};

/// Price sending `count` concurrent `size`-byte messages across the layer
/// serving `pair` versus one gathered message. Returns nullopt when the
/// profile lacks data for the pair.
[[nodiscard]] std::optional<AggregationAdvice> advise_aggregation(
    const core::Profile& profile, CorePair pair, Bytes size, int count);

/// Tunable view of the aggregation decision: a `mode` enum axis over
/// {scattered, aggregated} priced from the profile's curves (scattered
/// listed first, so the tie benefit == 1.0 resolves to not aggregating,
/// like the advisor's strict > test). nullptr when the profile lacks the
/// layer or curve data for the pair — degenerate profiles surface here
/// instead of producing a garbage choice.
[[nodiscard]] std::unique_ptr<search::Tunable> make_aggregation_tunable(
    const core::Profile& profile, CorePair pair, Bytes size, int count);

}  // namespace servet::autotune
