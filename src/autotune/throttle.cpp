#include "autotune/throttle.hpp"

#include <utility>

#include "autotune/search/strategy.hpp"
#include "base/check.hpp"

namespace servet::autotune {

namespace {

/// The throttle walk as a Tunable: `cores` = k is admitted only when
/// every step 2..k cleared the marginal-gain threshold, so the feasible
/// set is a prefix {1..K} of the curve and the -cores cost makes any
/// search return K — exactly the original early-stopping walk.
class ThrottleTunable final : public search::Tunable {
  public:
    ThrottleTunable(std::vector<BytesPerSecond> aggregate_by_n, double min_marginal_gain)
        : aggregate_by_n_(std::move(aggregate_by_n)) {
        space_.add_int("cores", 1, static_cast<std::int64_t>(aggregate_by_n_.size()));
        space_.add_constraint(
            "prefix-marginal-gain", [this, min_marginal_gain](const search::Config& c) {
                const auto k = static_cast<std::size_t>(c.at("cores"));
                for (std::size_t step = 1; step < k; ++step) {
                    const double gain =
                        aggregate_by_n_[step] - aggregate_by_n_[step - 1];
                    if (gain < min_marginal_gain * aggregate_by_n_[step - 1]) return false;
                }
                return true;
            });
    }

    [[nodiscard]] std::string name() const override { return "throttle"; }
    [[nodiscard]] const search::ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        return -static_cast<double>(config.at("cores"));
    }

  private:
    std::vector<BytesPerSecond> aggregate_by_n_;
    search::ConfigSpace space_;
};

std::optional<std::vector<BytesPerSecond>> aggregate_curve(const core::Profile& profile,
                                                           std::size_t tier) {
    if (tier >= profile.memory.tiers.size()) return std::nullopt;
    const auto& curve = profile.memory.tiers[tier].scalability;
    if (curve.empty()) return std::nullopt;
    std::vector<BytesPerSecond> aggregate;
    aggregate.reserve(curve.size());
    for (std::size_t k = 0; k < curve.size(); ++k)
        aggregate.push_back(static_cast<double>(k + 1) * curve[k]);
    return aggregate;
}

}  // namespace

std::unique_ptr<search::Tunable> make_throttle_tunable(const core::Profile& profile,
                                                       std::size_t tier,
                                                       double min_marginal_gain) {
    SERVET_CHECK(min_marginal_gain >= 0);
    auto aggregate = aggregate_curve(profile, tier);
    if (!aggregate) return nullptr;
    return std::make_unique<ThrottleTunable>(std::move(*aggregate), min_marginal_gain);
}

std::optional<ThrottleAdvice> advise_core_throttle(const core::Profile& profile,
                                                   std::size_t tier,
                                                   double min_marginal_gain) {
    SERVET_CHECK(min_marginal_gain >= 0);
    auto aggregate = aggregate_curve(profile, tier);
    if (!aggregate) return std::nullopt;

    const auto tunable = make_throttle_tunable(profile, tier, min_marginal_gain);
    SERVET_CHECK(tunable != nullptr);
    const auto result = search::run_search(*tunable, {});
    SERVET_CHECK(result.has_value());  // cores=1 is always admitted

    ThrottleAdvice advice;
    advice.aggregate_by_n = std::move(*aggregate);
    advice.recommended_cores = static_cast<int>(result->best.at("cores"));
    return advice;
}

}  // namespace servet::autotune
