#include "autotune/throttle.hpp"

#include "base/check.hpp"

namespace servet::autotune {

std::optional<ThrottleAdvice> advise_core_throttle(const core::Profile& profile,
                                                   std::size_t tier,
                                                   double min_marginal_gain) {
    SERVET_CHECK(min_marginal_gain >= 0);
    if (tier >= profile.memory.tiers.size()) return std::nullopt;
    const auto& curve = profile.memory.tiers[tier].scalability;
    if (curve.empty()) return std::nullopt;

    ThrottleAdvice advice;
    advice.aggregate_by_n.reserve(curve.size());
    for (std::size_t k = 0; k < curve.size(); ++k)
        advice.aggregate_by_n.push_back(static_cast<double>(k + 1) * curve[k]);

    advice.recommended_cores = 1;
    for (std::size_t k = 1; k < advice.aggregate_by_n.size(); ++k) {
        const double gain = advice.aggregate_by_n[k] - advice.aggregate_by_n[k - 1];
        if (gain < min_marginal_gain * advice.aggregate_by_n[k - 1]) break;
        advice.recommended_cores = static_cast<int>(k + 1);
    }
    return advice;
}

}  // namespace servet::autotune
