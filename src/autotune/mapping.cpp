#include "autotune/mapping.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "autotune/search/strategy.hpp"
#include "base/check.hpp"
#include "base/rng.hpp"

namespace servet::autotune {

std::vector<std::string> CommGraph::validate() const {
    std::vector<std::string> problems;
    if (ranks < 1) problems.push_back("graph needs at least one rank");
    for (const Edge& edge : edges) {
        if (edge.rank_a < 0 || edge.rank_a >= ranks || edge.rank_b < 0 ||
            edge.rank_b >= ranks)
            problems.push_back("edge references an out-of-range rank");
        if (edge.rank_a == edge.rank_b) problems.push_back("self-loop edge");
        if (edge.weight < 0) problems.push_back("negative edge weight");
    }
    return problems;
}

CommGraph CommGraph::ring(int ranks, double weight) {
    CommGraph graph;
    graph.ranks = ranks;
    for (int r = 0; r < ranks; ++r)
        if (ranks > 1) graph.edges.push_back({r, (r + 1) % ranks, weight});
    if (ranks == 2) graph.edges.pop_back();  // avoid the duplicate 1-0 edge
    return graph;
}

CommGraph CommGraph::stencil2d(int rows, int cols, double weight) {
    CommGraph graph;
    graph.ranks = rows * cols;
    const auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) graph.edges.push_back({id(r, c), id(r, c + 1), weight});
            if (r + 1 < rows) graph.edges.push_back({id(r, c), id(r + 1, c), weight});
        }
    }
    return graph;
}

CommGraph CommGraph::all_to_all(int ranks, double weight) {
    CommGraph graph;
    graph.ranks = ranks;
    for (int a = 0; a < ranks; ++a)
        for (int b = a + 1; b < ranks; ++b) graph.edges.push_back({a, b, weight});
    return graph;
}

CommGraph CommGraph::random_sparse(int ranks, int degree, std::uint64_t seed) {
    SERVET_CHECK(ranks >= 2 && degree >= 1);
    Rng rng(seed);
    CommGraph graph;
    graph.ranks = ranks;
    std::set<std::pair<int, int>> seen;
    for (int a = 0; a < ranks; ++a) {
        for (int d = 0; d < degree; ++d) {
            const int b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
            if (b == a) continue;
            const auto key = std::minmax(a, b);
            if (!seen.insert(key).second) continue;
            graph.edges.push_back({key.first, key.second, 1.0 + 2.0 * rng.next_double()});
        }
    }
    return graph;
}

std::vector<std::vector<CommGraph::Edge>> edge_rounds(const CommGraph& graph) {
    SERVET_CHECK_MSG(graph.validate().empty(), "invalid communication graph");
    std::vector<CommGraph::Edge> remaining = graph.edges;
    std::vector<std::vector<CommGraph::Edge>> rounds;
    while (!remaining.empty()) {
        std::vector<CommGraph::Edge> round;
        std::vector<bool> busy(static_cast<std::size_t>(graph.ranks), false);
        std::vector<CommGraph::Edge> deferred;
        for (const CommGraph::Edge& edge : remaining) {
            const auto a = static_cast<std::size_t>(edge.rank_a);
            const auto b = static_cast<std::size_t>(edge.rank_b);
            if (busy[a] || busy[b]) {
                deferred.push_back(edge);
            } else {
                busy[a] = busy[b] = true;
                round.push_back(edge);
            }
        }
        rounds.push_back(std::move(round));
        remaining = std::move(deferred);
    }
    return rounds;
}

namespace {

/// One "message equivalent" for the contention penalty so the two
/// objective terms share units: the slowest layer's probe latency (or 1.0
/// when the profile carries no communication data).
double penalty_unit(const core::Profile& profile) {
    double unit = 0.0;
    for (const auto& layer : profile.comm) unit = std::max(unit, layer.latency);
    return unit > 0 ? unit : 1.0;
}

double memory_penalty(const core::Profile& profile,
                      const std::vector<CoreId>& core_of_rank) {
    double penalty = 0.0;
    const double reference = profile.memory.reference_bandwidth;
    if (reference <= 0) return 0.0;
    for (const auto& tier : profile.memory.tiers) {
        const double severity = std::max(0.0, 1.0 - tier.bandwidth / reference);
        for (const auto& group : tier.groups) {
            int occupants = 0;
            for (CoreId core : core_of_rank)
                if (std::find(group.begin(), group.end(), core) != group.end()) ++occupants;
            if (occupants > 1) penalty += severity * static_cast<double>(occupants - 1);
        }
    }
    return penalty;
}

}  // namespace

double placement_cost(const core::Profile& profile, const CommGraph& graph,
                      const std::vector<CoreId>& core_of_rank,
                      const MappingOptions& options) {
    SERVET_CHECK(core_of_rank.size() == static_cast<std::size_t>(graph.ranks));
    double comm_cost = 0.0;
    for (const CommGraph::Edge& edge : graph.edges) {
        const CoreId a = core_of_rank[static_cast<std::size_t>(edge.rank_a)];
        const CoreId b = core_of_rank[static_cast<std::size_t>(edge.rank_b)];
        if (a == b) continue;  // co-located ranks exchange through cache
        const auto latency = profile.comm_latency({a, b}, options.message_size);
        if (latency) comm_cost += edge.weight * *latency;
    }
    return comm_cost +
           options.memory_weight * penalty_unit(profile) *
               memory_penalty(profile, core_of_rank);
}

namespace {

/// The two seed placements the mapper chooses between, with their
/// unrefined objective values.
struct SeedPlacements {
    std::vector<CoreId> greedy;
    double greedy_cost = 0.0;
    std::vector<CoreId> identity;
    double identity_cost = 0.0;
};

/// The seed choice as a Tunable: "greedy" enumerates first, so a cost
/// tie keeps the greedy construction — the pre-search selector replaced
/// it only on strict improvement.
class MappingTunable final : public search::Tunable {
  public:
    MappingTunable(double greedy_cost, double identity_cost)
        : costs_{greedy_cost, identity_cost} {
        space_.add_enum("seed", {"greedy", "identity"});
    }

    [[nodiscard]] std::string name() const override { return "mapping"; }
    [[nodiscard]] const search::ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        return costs_[static_cast<std::size_t>(config.at("seed"))];
    }

  private:
    double costs_[2];
    search::ConfigSpace space_;
};

SeedPlacements seed_placements(const core::Profile& profile, const CommGraph& graph,
                               const MappingOptions& options) {
    const int n_ranks = graph.ranks;
    const int n_cores = profile.cores;

    // Greedy seed: place ranks in order of total incident weight, each on
    // the free core minimizing cost against already-placed neighbours.
    std::vector<double> incident(static_cast<std::size_t>(n_ranks), 0.0);
    for (const auto& edge : graph.edges) {
        incident[static_cast<std::size_t>(edge.rank_a)] += edge.weight;
        incident[static_cast<std::size_t>(edge.rank_b)] += edge.weight;
    }
    std::vector<int> order(static_cast<std::size_t>(n_ranks));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return incident[static_cast<std::size_t>(a)] >
                                                incident[static_cast<std::size_t>(b)]; });

    std::vector<CoreId> placement(static_cast<std::size_t>(n_ranks), -1);
    std::vector<bool> used(static_cast<std::size_t>(n_cores), false);
    for (int rank : order) {
        int best_core = -1;
        double best_cost = 0.0;
        for (CoreId core = 0; core < n_cores; ++core) {
            if (used[static_cast<std::size_t>(core)]) continue;
            // Partial cost: edges to placed neighbours plus contention of
            // the partial placement.
            placement[static_cast<std::size_t>(rank)] = core;
            double cost = options.memory_weight * penalty_unit(profile) *
                          memory_penalty(profile, placement);
            for (const auto& edge : graph.edges) {
                const int other = edge.rank_a == rank   ? edge.rank_b
                                  : edge.rank_b == rank ? edge.rank_a
                                                        : -1;
                if (other < 0) continue;
                const CoreId peer = placement[static_cast<std::size_t>(other)];
                if (peer < 0 || peer == core) continue;
                const auto latency = profile.comm_latency({core, peer}, options.message_size);
                if (latency) cost += edge.weight * *latency;
            }
            if (best_core < 0 || cost < best_cost) {
                best_core = core;
                best_cost = cost;
            }
        }
        SERVET_CHECK(best_core >= 0);
        placement[static_cast<std::size_t>(rank)] = best_core;
        used[static_cast<std::size_t>(best_core)] = true;
    }

    SeedPlacements seeds;
    seeds.greedy_cost = placement_cost(profile, graph, placement, options);
    seeds.greedy = std::move(placement);
    // The identity placement (rank r on core r) is the no-tuning baseline;
    // greedy construction can land somewhere worse. The seed search picks
    // whichever is cheaper, guaranteeing the result never loses to the
    // naive launcher it is meant to replace.
    seeds.identity.resize(static_cast<std::size_t>(n_ranks));
    std::iota(seeds.identity.begin(), seeds.identity.end(), 0);
    seeds.identity_cost = placement_cost(profile, graph, seeds.identity, options);
    return seeds;
}

}  // namespace

std::unique_ptr<search::Tunable> make_mapping_tunable(const core::Profile& profile,
                                                      const CommGraph& graph,
                                                      const MappingOptions& options) {
    SERVET_CHECK_MSG(graph.validate().empty(), "invalid communication graph");
    SERVET_CHECK_MSG(graph.ranks <= profile.cores, "more ranks than cores");
    const SeedPlacements seeds = seed_placements(profile, graph, options);
    return std::make_unique<MappingTunable>(seeds.greedy_cost, seeds.identity_cost);
}

MappingResult map_processes(const core::Profile& profile, const CommGraph& graph,
                            const MappingOptions& options) {
    SERVET_CHECK_MSG(graph.validate().empty(), "invalid communication graph");
    SERVET_CHECK_MSG(graph.ranks <= profile.cores, "more ranks than cores");

    const int n_ranks = graph.ranks;
    const int n_cores = profile.cores;

    SeedPlacements seeds = seed_placements(profile, graph, options);
    const MappingTunable tunable(seeds.greedy_cost, seeds.identity_cost);
    const auto searched = search::run_search(tunable, {});
    SERVET_CHECK(searched.has_value());
    const bool use_identity = searched->best.label("seed") == "identity";

    MappingResult result;
    result.greedy_cost = use_identity ? seeds.identity_cost : seeds.greedy_cost;
    std::vector<CoreId> placement =
        use_identity ? std::move(seeds.identity) : std::move(seeds.greedy);

    // Pairwise refinement: try moving each rank to every core (swapping
    // with its occupant when taken); keep strict improvements.
    double current = result.greedy_cost;
    for (int sweep = 0; sweep < options.refine_sweeps; ++sweep) {
        bool improved = false;
        for (int rank = 0; rank < n_ranks; ++rank) {
            for (CoreId core = 0; core < n_cores; ++core) {
                const CoreId old_core = placement[static_cast<std::size_t>(rank)];
                if (core == old_core) continue;
                int occupant = -1;
                for (int r = 0; r < n_ranks; ++r)
                    if (placement[static_cast<std::size_t>(r)] == core) occupant = r;

                placement[static_cast<std::size_t>(rank)] = core;
                if (occupant >= 0) placement[static_cast<std::size_t>(occupant)] = old_core;
                const double candidate = placement_cost(profile, graph, placement, options);
                if (candidate + 1e-15 < current) {
                    current = candidate;
                    improved = true;
                } else {
                    placement[static_cast<std::size_t>(rank)] = old_core;
                    if (occupant >= 0) placement[static_cast<std::size_t>(occupant)] = core;
                }
            }
        }
        if (!improved) break;
    }

    result.core_of_rank = std::move(placement);
    result.cost = current;
    return result;
}

std::optional<MappingResult> try_map_processes(const core::Profile& profile,
                                               const CommGraph& graph,
                                               const MappingOptions& options) {
    if (!graph.edges.empty()) {
        bool priceable = false;
        for (std::size_t layer = 0; layer < profile.comm.size() && !priceable; ++layer)
            if (profile.layer_latency(static_cast<int>(layer), options.message_size))
                priceable = true;
        if (!priceable) return std::nullopt;
    }
    return map_processes(profile, graph, options);
}

}  // namespace servet::autotune
