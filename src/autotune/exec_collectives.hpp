// Executable collectives: run a Schedule with real data movement over a
// CommWorld (one driving thread per participating core), rather than just
// pricing it. This closes the loop on the collective advisor — the same
// schedule objects the selector prices are the ones applications execute —
// and the tests verify semantic correctness (exact byte delivery for
// broadcasts, exact sums for reductions) for every algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "autotune/collectives.hpp"
#include "msg/comm_world.hpp"

namespace servet::autotune {

/// Execute a whole-payload broadcast schedule (flat, binomial, or
/// hierarchical — every transfer carries the full payload). `world` must
/// have at least max(cores)+1 ranks (core ids are used as ranks). Returns
/// each core's received buffer, keyed by core id; the root maps to the
/// original payload.
[[nodiscard]] std::map<CoreId, std::vector<std::uint8_t>> execute_broadcast(
    msg::CommWorld& world, const Schedule& schedule, CoreId root,
    const std::vector<CoreId>& cores, std::span<const std::uint8_t> payload);

/// Round-stepped broadcast execution on the calling thread: rounds run in
/// order, and within a round every (buffered eager) send is posted before
/// any receive drains, so the round's transfers are order-independent.
/// Semantically identical to execute_broadcast, but with no thread per
/// core it executes 1k-10k-rank cluster schedules that would exhaust the
/// OS thread limit. `world` must have at least max(cores)+1 ranks.
[[nodiscard]] std::map<CoreId, std::vector<std::uint8_t>> execute_broadcast_stepped(
    msg::CommWorld& world, const Schedule& schedule, CoreId root,
    const std::vector<CoreId>& cores, std::span<const std::uint8_t> payload);

/// Execute a reduction schedule (reduce_binomial / reduce_hierarchical):
/// each core contributes `contributions.at(core)`; parents element-wise
/// add incoming vectors into their accumulator before forwarding. Returns
/// the root's final accumulator. All contributions must share one length.
[[nodiscard]] std::vector<double> execute_reduce_sum(
    msg::CommWorld& world, const Schedule& schedule, CoreId root,
    const std::vector<CoreId>& cores,
    const std::map<CoreId, std::vector<double>>& contributions);

/// Execute an allreduce schedule (allreduce_composed or
/// allreduce_recursive_doubling): like execute_reduce_sum, but every
/// core's final accumulator is returned and must equal the global sum.
/// Exchange rounds ship each core's pre-round accumulator (sends precede
/// receives within a round).
[[nodiscard]] std::map<CoreId, std::vector<double>> execute_allreduce_sum(
    msg::CommWorld& world, const Schedule& schedule, const std::vector<CoreId>& cores,
    const std::map<CoreId, std::vector<double>>& contributions);

}  // namespace servet::autotune
