// Core-throttling advice from the memory scalability curves. Section III-C:
// "autotuning could optimize codes by limiting the number of cores
// accessing to memory if a poorly scalable memory system is detected."
// The advisor walks a tier's measured per-core bandwidth curve and stops
// adding cores once the marginal aggregate-bandwidth gain drops below a
// threshold.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "autotune/search/tunable.hpp"
#include "base/types.hpp"
#include "core/profile.hpp"

namespace servet::autotune {

struct ThrottleAdvice {
    int recommended_cores = 1;
    /// aggregate_by_n[k] = (k+1) * per-core bandwidth with k+1 streamers.
    std::vector<BytesPerSecond> aggregate_by_n;
};

/// Advice for memory tier `tier`. `min_marginal_gain` is the fraction of
/// the current aggregate bandwidth one more core must add to be worth it.
/// Returns nullopt when the tier has no scalability data.
[[nodiscard]] std::optional<ThrottleAdvice> advise_core_throttle(
    const core::Profile& profile, std::size_t tier, double min_marginal_gain = 0.05);

/// Tunable view of the throttle choice: a `cores` axis over the measured
/// curve with a prefix-feasibility constraint (every step up to k must
/// clear the marginal-gain threshold — the paper's "stop adding cores"
/// walk) and analytic cost -cores, so the search's best is the longest
/// passing prefix. nullptr when the tier has no scalability data.
[[nodiscard]] std::unique_ptr<search::Tunable> make_throttle_tunable(
    const core::Profile& profile, std::size_t tier, double min_marginal_gain = 0.05);

}  // namespace servet::autotune
