// Profile-driven process placement — the MPIPP/Mercier-style mapping the
// paper positions Servet under (Section II): those tools need per-pair
// communication costs and get them from machine documentation; Servet
// measures them. Given an application communication graph, the mapper
// assigns ranks to cores minimizing
//     sum over edges  weight(i,j) * measured_latency(core_i, core_j)
//   + memory_weight * contention_penalty(placement)
// where the contention penalty charges each memory-collision group (from
// the memory-overhead benchmark) for every extra rank placed in it. A
// greedy seed is refined by pairwise-swap hill climbing; both steps are
// deterministic.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "autotune/search/tunable.hpp"
#include "base/types.hpp"
#include "core/profile.hpp"

namespace servet::autotune {

/// Undirected application communication graph.
struct CommGraph {
    struct Edge {
        int rank_a = 0;
        int rank_b = 0;
        double weight = 1.0;  ///< relative traffic (e.g. messages per step)
    };
    int ranks = 0;
    std::vector<Edge> edges;

    [[nodiscard]] std::vector<std::string> validate() const;

    /// Convenience builders for classic applications.
    [[nodiscard]] static CommGraph ring(int ranks, double weight = 1.0);
    [[nodiscard]] static CommGraph stencil2d(int rows, int cols, double weight = 1.0);
    [[nodiscard]] static CommGraph all_to_all(int ranks, double weight = 1.0);
    /// Irregular communication (graph-partitioned FEM meshes, sparse
    /// solvers): each rank talks to ~`degree` random peers with weights in
    /// [1, 3). Deterministic per seed. The case where rank order carries
    /// no locality and profile-driven mapping matters most.
    [[nodiscard]] static CommGraph random_sparse(int ranks, int degree, std::uint64_t seed);
};

struct MappingOptions {
    /// Message size used to price edges from the profile's p2p curves.
    Bytes message_size = 32 * KiB;
    /// Relative weight of the memory-contention penalty versus
    /// communication cost (0 = communication only).
    double memory_weight = 0.25;
    /// Hill-climbing sweeps over all placement pairs.
    int refine_sweeps = 8;
};

struct MappingResult {
    std::vector<CoreId> core_of_rank;
    double cost = 0.0;           ///< final objective value
    double greedy_cost = 0.0;    ///< objective before refinement
};

/// Greedy partition of a graph's edges into rounds of vertex-disjoint
/// edges (an edge coloring): the concurrent-transfer schedule of a
/// bulk-synchronous halo exchange, used to *execute* a placement on a
/// Network and validate the mapper's predicted improvements end to end.
[[nodiscard]] std::vector<std::vector<CommGraph::Edge>> edge_rounds(const CommGraph& graph);

/// Objective value of a placement (exposed for tests and ablations).
[[nodiscard]] double placement_cost(const core::Profile& profile, const CommGraph& graph,
                                    const std::vector<CoreId>& core_of_rank,
                                    const MappingOptions& options);

/// Map `graph.ranks` ranks onto the profile's cores (ranks <= cores).
/// Edges the profile cannot price are silently skipped; callers that
/// need a loud failure on comm-less profiles use try_map_processes.
[[nodiscard]] MappingResult map_processes(const core::Profile& profile, const CommGraph& graph,
                                          const MappingOptions& options = {});

/// map_processes behind a degenerate-profile guard: nullopt when the
/// graph has edges but the profile cannot price a message of
/// options.message_size on any measured comm layer — every placement
/// would then cost the same and the "optimized" mapping would be
/// garbage. Prefer this entry point for profiles of unknown provenance.
[[nodiscard]] std::optional<MappingResult> try_map_processes(
    const core::Profile& profile, const CommGraph& graph, const MappingOptions& options = {});

/// Tunable view of the mapping seed choice: a `seed` enum axis over
/// {greedy, identity} priced by the unrefined placement_cost (greedy
/// first, so a tie keeps it); map_processes refines the search winner by
/// pairwise-swap hill climbing, exactly as before.
[[nodiscard]] std::unique_ptr<search::Tunable> make_mapping_tunable(
    const core::Profile& profile, const CommGraph& graph, const MappingOptions& options = {});

}  // namespace servet::autotune
