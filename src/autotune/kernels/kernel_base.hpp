// Shared substrate for the tunable kernels: profile storage, the
// config-space cache, and the nominal cache-fit cost model every
// analytic prior builds on. Internal to src/autotune/kernels/.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "autotune/search/tunable.hpp"
#include "base/types.hpp"
#include "core/profile.hpp"

namespace servet::autotune::kernels {

class KernelBase : public search::Tunable {
  public:
    KernelBase(std::string name, core::Profile profile, int max_cores)
        : name_(std::move(name)), profile_(std::move(profile)),
          max_cores_(max_cores < 1 ? 1 : max_cores) {}

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] const search::ConfigSpace& space() const override { return space_; }
    [[nodiscard]] bool measurable() const override { return true; }

  protected:
    /// Nominal cycles per access of a `working_set`-byte streaming
    /// working set, from the profile's detected cache ladder: the
    /// smallest fitting level costs 4^level, a memory-resident set costs
    /// 4^levels * 2.5. The absolute numbers are nominal — only the
    /// ordering matters, and any machine whose caches get slower outward
    /// orders the same way. nullopt when the profile has no cache data
    /// (no prior available).
    [[nodiscard]] std::optional<double> nominal_access_cycles(Bytes working_set) const {
        if (profile_.caches.empty()) return std::nullopt;
        double cost = 1.0;
        for (const auto& level : profile_.caches) {
            if (level.size >= working_set) return cost;
            cost *= 4.0;
        }
        return cost * 2.5;
    }

    std::string name_;
    core::Profile profile_;
    int max_cores_;
    search::ConfigSpace space_;
};

}  // namespace servet::autotune::kernels
