#include "autotune/kernels/kernels.hpp"

namespace servet::autotune::kernels {

const std::vector<std::string>& kernel_names() {
    static const std::vector<std::string> names = {"stencil", "transpose", "reduction",
                                                   "spmv"};
    return names;
}

std::unique_ptr<search::Tunable> make_kernel(std::string_view name,
                                             const core::Profile& profile, int max_cores) {
    if (name == "stencil") return make_stencil(profile, max_cores);
    if (name == "transpose") return make_transpose(profile, max_cores);
    if (name == "reduction") return make_reduction(profile, max_cores);
    if (name == "spmv") return make_spmv(profile, max_cores);
    return nullptr;
}

}  // namespace servet::autotune::kernels
