#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "autotune/kernels/kernel_base.hpp"
#include "autotune/kernels/kernels.hpp"
#include "base/check.hpp"
#include "platform/platform.hpp"

namespace servet::autotune::kernels {

namespace {

constexpr Bytes kTotal = 64 * MiB;
/// Nominal per-chunk dispatch overhead (work-queue pop + task setup).
constexpr double kDispatchSeconds = 2e-6;

int ceil_log2(std::int64_t n) {
    int bits = 0;
    std::int64_t v = 1;
    while (v < n) {
        v *= 2;
        ++bits;
    }
    return bits;
}

/// Tree reduction of a fixed 64 MiB array: `cores` workers stream
/// disjoint `grain`-byte chunks, then combine partials in ceil(log2 k)
/// steps each bounded by the slowest streamer. More cores buy aggregate
/// bandwidth until the memory system saturates (which the profile's
/// scalability curve predicts); finer grains balance load but pay
/// per-chunk dispatch. Cost is in seconds.
class ReductionKernel final : public KernelBase {
  public:
    ReductionKernel(core::Profile profile, int max_cores)
        : KernelBase("reduction", std::move(profile), max_cores) {
        space_.add_int("cores", 1, max_cores_);
        space_.add_pow2("grain", 64 * 1024, 4 * 1024 * 1024);
    }

    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        const auto k = config.at("cores");
        const auto grain = static_cast<double>(config.at("grain"));
        auto per_core = profile_.memory_bandwidth_at(0, static_cast<int>(k));
        if (!per_core && profile_.memory.reference_bandwidth > 0)
            per_core = profile_.memory.reference_bandwidth;
        if (!per_core || *per_core <= 0) return std::nullopt;
        const double aggregate = *per_core * static_cast<double>(k);
        return cost_model(static_cast<double>(k), grain, aggregate, *per_core);
    }

    [[nodiscard]] double measure(const search::Config& config, Platform* platform,
                                 msg::Network* /*network*/) const override {
        SERVET_CHECK(platform != nullptr);
        const auto k = config.at("cores");
        const auto grain = static_cast<Bytes>(config.at("grain"));
        std::vector<CoreId> cores(static_cast<std::size_t>(k));
        std::iota(cores.begin(), cores.end(), 0);
        const auto bws = platform->copy_bandwidth_concurrent(cores, grain);
        const double aggregate = std::accumulate(bws.begin(), bws.end(), 0.0);
        const double slowest = *std::min_element(bws.begin(), bws.end());
        return cost_model(static_cast<double>(k), static_cast<double>(grain), aggregate,
                          slowest);
    }

  private:
    static double cost_model(double k, double grain, double aggregate, double slowest) {
        const double total = static_cast<double>(kTotal);
        const double stream = total / aggregate;
        const double dispatch = (total / grain) * kDispatchSeconds / k;
        const double combine =
            static_cast<double>(ceil_log2(static_cast<std::int64_t>(k))) * grain / slowest;
        return stream + dispatch + combine;
    }
};

}  // namespace

std::unique_ptr<search::Tunable> make_reduction(const core::Profile& profile, int max_cores) {
    return std::make_unique<ReductionKernel>(profile, max_cores);
}

}  // namespace servet::autotune::kernels
