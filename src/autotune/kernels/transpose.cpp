#include <algorithm>
#include <memory>
#include <utility>

#include "autotune/kernels/kernel_base.hpp"
#include "autotune/kernels/kernels.hpp"
#include "base/check.hpp"
#include "platform/platform.hpp"

namespace servet::autotune::kernels {

namespace {

constexpr Bytes kElement = 8;
constexpr Bytes kLine = 64;

/// Blocked out-of-place transpose of a 1024x1024 matrix with BxB blocks.
/// Per element the kernel runs one sequential stream over the 2*B*B
/// block working set (source rows + destination rows) and one
/// stride-B*8 stream (the column walk of the source block). Small blocks
/// keep the strided walk inside cache lines but give the walk no reuse
/// window; large blocks spill the working set — the classic transpose
/// blocking tradeoff.
class TransposeKernel final : public KernelBase {
  public:
    TransposeKernel(core::Profile profile, int max_cores)
        : KernelBase("transpose", std::move(profile), max_cores) {
        space_.add_pow2("block", 4, 256);
    }

    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        const auto block = static_cast<Bytes>(config.at("block"));
        const auto base = nominal_access_cycles(working_set(block));
        if (!base) return std::nullopt;
        // The strided walk costs a fresh line every max(1, line/stride)
        // elements; past one line per element it saturates at 8x.
        const double stride_factor = std::clamp(
            static_cast<double>(block * kElement) / static_cast<double>(kLine), 1.0, 8.0);
        return *base * (1.0 + stride_factor);
    }

    [[nodiscard]] double measure(const search::Config& config, Platform* platform,
                                 msg::Network* /*network*/) const override {
        SERVET_CHECK(platform != nullptr);
        const auto block = static_cast<Bytes>(config.at("block"));
        const Bytes ws = working_set(block);
        const Cycles sequential = platform->traverse_cycles(0, ws, kElement, 2);
        const Cycles strided = platform->traverse_cycles(0, ws, block * kElement, 2);
        return sequential + strided;
    }

  private:
    static Bytes working_set(Bytes block) { return 2 * block * block * kElement; }
};

}  // namespace

std::unique_ptr<search::Tunable> make_transpose(const core::Profile& profile, int max_cores) {
    return std::make_unique<TransposeKernel>(profile, max_cores);
}

}  // namespace servet::autotune::kernels
