#include <memory>
#include <utility>

#include "autotune/kernels/kernel_base.hpp"
#include "autotune/kernels/kernels.hpp"
#include "base/check.hpp"
#include "platform/platform.hpp"

namespace servet::autotune::kernels {

namespace {

constexpr std::int64_t kRows = 65536;
constexpr std::int64_t kNnzPerRow = 16;
/// CSR row footprint: nnz * (8-byte value + 4-byte column) + row pointer
/// and output element.
constexpr Bytes kBytesPerRow =
    static_cast<Bytes>(kNnzPerRow) * (8 + 4) + 16;
constexpr Bytes kXBytes = static_cast<Bytes>(kRows) * 8;  // 512 KiB
/// Amortized cycles/nnz of pre-sorting column indices per row block.
constexpr double kSortOverheadCycles = 0.75;

/// CSR sparse matrix-vector product, 65536 rows x 16 nnz. Two streams
/// per nnz: the matrix stream (values + indices) through a
/// row_block-row buffer, and the x-vector gather, whose locality
/// depends on whether column indices are pre-sorted per block ("sorted"
/// walks x near-sequentially for an amortized preprocessing toll,
/// "scalar" jumps). Whether sorting pays depends on how expensive the
/// scattered gather is on this machine — a profile question.
class SpmvKernel final : public KernelBase {
  public:
    SpmvKernel(core::Profile profile, int max_cores)
        : KernelBase("spmv", std::move(profile), max_cores) {
        space_.add_pow2("row_block", 64, 8192);
        space_.add_enum("gather", {"scalar", "sorted"});
    }

    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        const auto stream = nominal_access_cycles(stream_ws(config));
        const auto gather = nominal_access_cycles(kXBytes);
        if (!stream || !gather) return std::nullopt;
        const bool sorted = config.label("gather") == "sorted";
        // A scattered gather misses where the sorted walk reuses lines;
        // 3x is the nominal amplification (one line per element vs. one
        // line per eight 8-byte elements, damped by partial reuse).
        const double gather_cost = *gather * (sorted ? 1.0 : 3.0);
        return *stream + gather_cost + (sorted ? kSortOverheadCycles : 0.0);
    }

    [[nodiscard]] double measure(const search::Config& config, Platform* platform,
                                 msg::Network* /*network*/) const override {
        SERVET_CHECK(platform != nullptr);
        const Cycles stream = platform->traverse_cycles(0, stream_ws(config), 64, 2);
        const bool sorted = config.label("gather") == "sorted";
        const Bytes gather_stride = sorted ? 64 : 1024;
        const Cycles gather = platform->traverse_cycles(0, kXBytes, gather_stride, 2);
        return stream + gather + (sorted ? kSortOverheadCycles : 0.0);
    }

  private:
    static Bytes stream_ws(const search::Config& config) {
        return static_cast<Bytes>(config.at("row_block")) * kBytesPerRow;
    }
};

}  // namespace

std::unique_ptr<search::Tunable> make_spmv(const core::Profile& profile, int max_cores) {
    return std::make_unique<SpmvKernel>(profile, max_cores);
}

}  // namespace servet::autotune::kernels
