#include <memory>
#include <utility>

#include "autotune/kernels/kernel_base.hpp"
#include "autotune/kernels/kernels.hpp"
#include "base/check.hpp"
#include "platform/platform.hpp"

namespace servet::autotune::kernels {

namespace {

constexpr Bytes kElement = 8;

/// The measured probe's stride: the north/south neighbor reads jump a
/// full grid row, far beyond any stream prefetcher's reach, so the probe
/// walks the working set at the suite's prefetch-defeating 1 KiB pitch
/// (the same choice mcalibrator makes when sizing caches). A unit-stride
/// probe would let the prefetcher hide every capacity miss and flatten
/// exactly the cache ladder this kernel tunes against.
constexpr Bytes kProbeStride = 1 * KiB;

/// 5-point Jacobi stencil over a fixed 512x512 grid, tiled TI x TJ. The
/// working set per tile is the (TI+2)x(TJ+2) halo'd input block plus the
/// TI x TJ output block; the cost per grid point is the cycles/access of
/// that working set times the halo read-amplification
/// (TI+2)(TJ+2)/(TI*TJ). Small tiles stay cache-resident but re-read
/// their halos; large tiles amortize halos but spill — the optimum sits
/// where the machine's cache ladder puts it, which is exactly what the
/// profile predicts.
class StencilKernel final : public KernelBase {
  public:
    StencilKernel(core::Profile profile, int max_cores)
        : KernelBase("stencil", std::move(profile), max_cores) {
        space_.add_pow2("tile_i", 8, 128);
        space_.add_pow2("tile_j", 8, 128);
        // Degenerate slivers re-read halos without any cache benefit over
        // their squarer siblings; prune them so the space stays honest.
        space_.add_constraint("aspect-le-8", [](const search::Config& c) {
            const std::int64_t ti = c.at("tile_i");
            const std::int64_t tj = c.at("tile_j");
            return ti <= 8 * tj && tj <= 8 * ti;
        });
    }

    [[nodiscard]] std::optional<double> analytic_cost(
        const search::Config& config) const override {
        const auto cycles = nominal_access_cycles(working_set(config));
        if (!cycles) return std::nullopt;
        return *cycles * halo_factor(config);
    }

    [[nodiscard]] double measure(const search::Config& config, Platform* platform,
                                 msg::Network* /*network*/) const override {
        SERVET_CHECK(platform != nullptr);
        const Cycles per_access =
            platform->traverse_cycles(0, working_set(config), kProbeStride, 2);
        return per_access * halo_factor(config);
    }

  private:
    static Bytes working_set(const search::Config& config) {
        const auto ti = static_cast<Bytes>(config.at("tile_i"));
        const auto tj = static_cast<Bytes>(config.at("tile_j"));
        return ((ti + 2) * (tj + 2) + ti * tj) * kElement;
    }

    static double halo_factor(const search::Config& config) {
        const double ti = static_cast<double>(config.at("tile_i"));
        const double tj = static_cast<double>(config.at("tile_j"));
        return (ti + 2.0) * (tj + 2.0) / (ti * tj);
    }
};

}  // namespace

std::unique_ptr<search::Tunable> make_stencil(const core::Profile& profile, int max_cores) {
    return std::make_unique<StencilKernel>(profile, max_cores);
}

}  // namespace servet::autotune::kernels
