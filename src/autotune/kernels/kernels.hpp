// A PBBS-style set of tunable kernels — stencil, transpose, reduction,
// spmv — exposed as search::Tunable so every SearchStrategy can drive
// them. Each kernel's measured cost composes Platform probes (strided
// traversals, streaming-copy bandwidths) whose parameters derive from the
// config, so the same kernel tunes on the simulator and on real hardware
// through the same fault-tolerant exec pipeline; its analytic cost
// mirrors the composition using the machine profile (cache sizes, memory
// scalability curves) as the prior the guided strategy ranks by. Cost
// units are kernel-local (cycles per point for the cache kernels, seconds
// for reduction) — comparisons are only meaningful within one kernel.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "autotune/search/tunable.hpp"
#include "core/profile.hpp"

namespace servet::autotune::kernels {

/// Registry order is the CLI/docs order: stencil, transpose, reduction,
/// spmv.
[[nodiscard]] const std::vector<std::string>& kernel_names();

/// Builds the named kernel. `max_cores` bounds any core-count axis (pass
/// the platform's core_count() for measured runs, profile.cores
/// otherwise); `profile` feeds the analytic prior and may be empty, in
/// which case analytic_cost returns nullopt and only blind strategies
/// make sense. nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<search::Tunable> make_kernel(std::string_view name,
                                                           const core::Profile& profile,
                                                           int max_cores);

[[nodiscard]] std::unique_ptr<search::Tunable> make_stencil(const core::Profile& profile,
                                                            int max_cores);
[[nodiscard]] std::unique_ptr<search::Tunable> make_transpose(const core::Profile& profile,
                                                              int max_cores);
[[nodiscard]] std::unique_ptr<search::Tunable> make_reduction(const core::Profile& profile,
                                                              int max_cores);
[[nodiscard]] std::unique_ptr<search::Tunable> make_spmv(const core::Profile& profile,
                                                         int max_cores);

}  // namespace servet::autotune::kernels
