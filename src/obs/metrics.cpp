#include "obs/metrics.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>

#include "base/check.hpp"

namespace servet::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    SERVET_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must ascend");
    counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double value) {
    std::size_t bucket = bounds_.size();  // overflow by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(counts_.size());
    for (const auto& count : counts_) out.push_back(count.load(std::memory_order_relaxed));
    return out;
}

std::uint64_t Histogram::total() const {
    std::uint64_t total = 0;
    for (const auto& count : counts_) total += count.load(std::memory_order_relaxed);
    return total;
}

Counter& Registry::counter(const std::string& name, Stability stability) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = counters_[name];
    if (entry == nullptr) {
        entry = std::make_unique<CounterEntry>();
        entry->stability = stability;
    }
    return entry->metric;
}

Gauge& Registry::gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = gauges_[name];
    if (entry == nullptr) entry = std::make_unique<Gauge>();
    return *entry;
}

Histogram& Registry::histogram(const std::string& name, Stability stability,
                               std::vector<double> bounds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& entry = histograms_[name];
    if (entry == nullptr) entry = std::make_unique<HistogramEntry>(stability, std::move(bounds));
    return entry->metric;
}

std::map<std::string, std::uint64_t> Registry::stable_counters() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, entry] : counters_)
        if (entry->stability == Stability::Stable) out[name] = entry->metric.value();
    return out;
}

namespace {

std::string fmt_bound(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void append_counters(std::string& out, const std::vector<std::pair<std::string, std::uint64_t>>& items) {
    out += "\"counters\": {";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += '"' + items[i].first + "\": " + std::to_string(items[i].second);
    }
    out += '}';
}

void append_histograms(std::string& out,
                       const std::vector<std::pair<std::string, const Histogram*>>& items) {
    out += "\"histograms\": {";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        const Histogram& h = *items[i].second;
        out += '"' + items[i].first + "\": {\"bounds\": [";
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            if (b) out += ", ";
            out += fmt_bound(h.bounds()[b]);
        }
        out += "], \"counts\": [";
        const std::vector<std::uint64_t> counts = h.counts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
            if (b) out += ", ";
            out += std::to_string(counts[b]);
        }
        out += "]}";
    }
    out += '}';
}

}  // namespace

std::string Registry::deterministic_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const auto& [name, entry] : counters_)
        if (entry->stability == Stability::Stable)
            counters.emplace_back(name, entry->metric.value());
    std::vector<std::pair<std::string, const Histogram*>> histograms;
    for (const auto& [name, entry] : histograms_)
        if (entry->stability == Stability::Stable)
            histograms.emplace_back(name, &entry->metric);

    std::string out = "{";
    append_counters(out, counters);
    out += ", ";
    append_histograms(out, histograms);
    out += '}';
    return out;
}

std::string Registry::to_json(bool stable_only) const {
    std::string out = "{\n  \"deterministic\": ";
    out += deterministic_json();
    if (stable_only) {
        out += "\n}\n";
        return out;
    }
    out += ",\n  \"volatile\": {";

    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const auto& [name, entry] : counters_)
        if (entry->stability == Stability::Volatile)
            counters.emplace_back(name, entry->metric.value());
    append_counters(out, counters);

    out += ", \"gauges\": {";
    std::size_t i = 0;
    for (const auto& [name, entry] : gauges_) {
        if (i++) out += ", ";
        out += '"' + name + "\": " + std::to_string(entry->value());
    }
    out += "}, ";

    std::vector<std::pair<std::string, const Histogram*>> histograms;
    for (const auto& [name, entry] : histograms_)
        if (entry->stability == Stability::Volatile)
            histograms.emplace_back(name, &entry->metric);
    append_histograms(out, histograms);

    out += "}\n}\n";
    return out;
}

std::vector<std::vector<std::string>> Registry::summary_rows() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto stability_tag = [](Stability s) {
        return std::string(s == Stability::Stable ? "stable" : "volatile");
    };
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, entry] : counters_)
        rows.push_back({name, "counter", stability_tag(entry->stability),
                        std::to_string(entry->metric.value())});
    for (const auto& [name, entry] : gauges_)
        rows.push_back({name, "gauge", "volatile", std::to_string(entry->value())});
    for (const auto& [name, entry] : histograms_) {
        std::string value = "n=" + std::to_string(entry->metric.total()) + " [";
        const std::vector<std::uint64_t> counts = entry->metric.counts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i) value += ' ';
            value += std::to_string(counts[i]);
        }
        value += ']';
        rows.push_back({name, "histogram", stability_tag(entry->stability), std::move(value)});
    }
    std::sort(rows.begin(), rows.end());
    return rows;
}

void Registry::reset_values() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, entry] : counters_)
        entry->metric.value_.store(0, std::memory_order_relaxed);
    for (auto& [name, entry] : gauges_) entry->value_.store(0, std::memory_order_relaxed);
    for (auto& [name, entry] : histograms_)
        for (auto& count : entry->metric.counts_)
            count.store(0, std::memory_order_relaxed);
}

Registry& registry() {
    static Registry* instance = new Registry();  // never destroyed: handles outlive exit paths
    return *instance;
}

Counter& counter(const std::string& name, Stability stability) {
    return registry().counter(name, stability);
}

Gauge& gauge(const std::string& name) { return registry().gauge(name); }

Histogram& histogram(const std::string& name, Stability stability,
                     std::vector<double> bounds) {
    return registry().histogram(name, stability, std::move(bounds));
}

std::string Registry::series_line(std::uint64_t tick, std::uint64_t fingerprint) const {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(fingerprint));
    return "{\"tick\": " + std::to_string(tick) + ", \"fingerprint\": \"" + hex +
           "\", \"metrics\": " + deterministic_json() + '}';
}

bool write_metrics_json(const std::string& path, bool stable_only) {
    std::ofstream out(path);
    if (!out) return false;
    out << registry().to_json(stable_only);
    return static_cast<bool>(out);
}

bool write_metrics_series_json(const std::string& path, std::uint64_t tick,
                               std::uint64_t fingerprint) {
    const std::string line = registry().series_line(tick, fingerprint) + '\n';
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    const char* data = line.data();
    std::size_t remaining = line.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd, data, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            return false;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    return synced;
}

}  // namespace servet::obs
