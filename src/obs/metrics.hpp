// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, designed around the suite's determinism contract. Every
// metric carries a Stability class: Stable metrics count logical events
// whose totals are independent of scheduling and wall clock (cache hits
// per simulated traversal, tasks executed, messages priced), so a
// `--jobs 4` run reports byte-identical values to a `--jobs 1` run and a
// golden test can pin them. Volatile metrics (queue high-water marks,
// task durations) are real observability but excluded from deterministic
// exports by construction.
//
// Naming convention (docs/observability.md): `<subsystem>.<object>.<event>`
// in lowercase, e.g. `sim.cache.L1.misses`, `exec.memo.hits`,
// `phase.comm_costs.measurements`.
//
// Hot-path rule: subsystems accumulate locally (plain integers in the
// simulator's inner loop) and flush aggregate deltas here at a natural
// quiescent point; registry handles are stable for the process lifetime,
// so looking one up once and keeping the pointer is idiomatic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace servet::obs {

/// Whether a metric's value is reproducible across schedules (see file
/// comment). Stable metrics enter deterministic exports and golden tests.
enum class Stability { Stable, Volatile };

/// Monotonic event count. add() is wait-free; totals are order-independent
/// sums, which is what makes Stable counters schedule-invariant.
class Counter {
  public:
    void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    void increment() { add(1); }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write or high-water-mark sample (queue depths, pool sizes).
/// Always Volatile: which write lands last depends on scheduling.
class Gauge {
  public:
    void set(std::uint64_t value) { value_.store(value, std::memory_order_relaxed); }
    /// Raises the gauge to `value` if larger (high-water mark).
    void record_max(std::uint64_t value) {
        std::uint64_t seen = value_.load(std::memory_order_relaxed);
        while (seen < value &&
               !value_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds, plus one
/// implicit overflow bucket, so there are bounds.size()+1 counts. Bounds
/// are fixed at registration — deterministic bucketing is what lets a
/// Stable histogram be golden-tested.
class Histogram {
  public:
    void observe(double value);
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts, aligned with bounds() plus the overflow bucket.
    [[nodiscard]] std::vector<std::uint64_t> counts() const;
    [[nodiscard]] std::uint64_t total() const;

  private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
};

/// Registry of every metric in the process. Handles returned by
/// counter()/gauge()/histogram() stay valid forever; re-registering a
/// name returns the existing metric (the stability and bounds of the
/// first registration win).
class Registry {
  public:
    Counter& counter(const std::string& name, Stability stability);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name, Stability stability,
                         std::vector<double> bounds);

    /// Current values of every Stable counter, sorted by name. This is
    /// the block run_suite snapshots (as start/end deltas) and the
    /// profile embeds.
    [[nodiscard]] std::map<std::string, std::uint64_t> stable_counters() const;

    /// Full JSON export: {"deterministic": {counters, histograms},
    /// "volatile": {counters, gauges, histograms}}. Keys sorted, so equal
    /// metric values render byte-identically. With `stable_only`, the
    /// "volatile" object is omitted entirely and the export is diffable
    /// across runs (Volatile values never repeat by definition).
    [[nodiscard]] std::string to_json(bool stable_only = false) const;

    /// One JSON line of a metrics time series: {"tick": N, "fingerprint":
    /// "<hex64>", "metrics": <deterministic object>}. Stable metrics
    /// only, no trailing newline — the byte-comparable feed a fleet
    /// aggregator ingests per watch tick, keyed by the measured machine's
    /// content fingerprint.
    [[nodiscard]] std::string series_line(std::uint64_t tick,
                                          std::uint64_t fingerprint) const;

    /// Only the "deterministic" object of to_json() — the byte-comparable
    /// part of a metrics export.
    [[nodiscard]] std::string deterministic_json() const;

    /// Rows for a human summary table: {name, kind, stability, value}.
    /// Counters/gauges render their value; histograms render
    /// "n=<total> [c0 c1 ...]".
    [[nodiscard]] std::vector<std::vector<std::string>> summary_rows() const;

    /// Zero every value (counts, gauges, histogram buckets), keeping the
    /// registered metrics. Test isolation only.
    void reset_values();

  private:
    struct CounterEntry {
        Counter metric;
        Stability stability;
    };
    struct HistogramEntry {
        HistogramEntry(Stability s, std::vector<double> bounds)
            : metric(std::move(bounds)), stability(s) {}
        Histogram metric;
        Stability stability;
    };

    mutable std::mutex mutex_;  // guards the maps, not the metric values
    std::map<std::string, std::unique_ptr<CounterEntry>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<HistogramEntry>> histograms_;
};

/// The process-wide registry every subsystem reports into.
[[nodiscard]] Registry& registry();

/// Shorthands against the global registry.
[[nodiscard]] Counter& counter(const std::string& name, Stability stability);
[[nodiscard]] Gauge& gauge(const std::string& name);
[[nodiscard]] Histogram& histogram(const std::string& name, Stability stability,
                                   std::vector<double> bounds);

/// Writes registry().to_json(stable_only) to `path`. False on I/O
/// failure.
[[nodiscard]] bool write_metrics_json(const std::string& path, bool stable_only = false);

/// Appends registry().series_line(tick, fingerprint) + '\n' to the
/// JSON-lines stream at `path` (created if absent) and fsyncs it, so a
/// crash never tears the line a fleet aggregator tails. False on I/O
/// failure.
[[nodiscard]] bool write_metrics_series_json(const std::string& path, std::uint64_t tick,
                                             std::uint64_t fingerprint);

}  // namespace servet::obs
