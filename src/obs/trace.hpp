// Hierarchical tracing spans over per-thread buffers, exportable as
// Chrome trace_event JSON ("traceEvents" complete events) for
// chrome://tracing / Perfetto. Usage:
//
//   void run_phase() {
//       SERVET_TRACE_SPAN("suite/comm_costs");
//       ...           // nested SERVET_TRACE_SPANs become child slices
//   }
//
// Design constraints, in order:
//  * Disabled cost ~0: a span checks one relaxed atomic and does nothing
//    else, so spans stay compiled into release hot paths.
//  * No cross-thread contention while recording: each thread appends to
//    its own fixed-capacity buffer; the only synchronization is a
//    release-store of the event count, which an exporter pairs with an
//    acquire-load. No locks, no shared cache lines on the record path.
//  * Bounded memory: a full buffer drops further events (counted in
//    `obs.trace.dropped`) rather than reallocating or overwriting — every
//    published event is immutable, so exporting concurrently with
//    recording is race-free by construction.
//
// Timestamps come from base/clock (the same time base the log prefix
// prints), thread ids are base/clock thread ordinals.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace servet::obs {

/// One finished span, as stored and as snapshotted for tests.
struct SpanEvent {
    static constexpr std::size_t kMaxName = 64;  // longer names truncate

    char name[kMaxName];
    std::uint64_t start_ns;
    std::uint64_t end_ns;
    std::int32_t tid;    ///< base/clock thread ordinal
    std::int32_t depth;  ///< nesting depth on its thread, outermost = 0
};

class Tracer {
  public:
    /// Spans record only while enabled. Enabling mid-process is fine
    /// (spans open at enable time record from their start normally; a
    /// span constructed while disabled stays a no-op even if tracing is
    /// enabled before it closes).
    void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Capacity (events per thread) for buffers created after the call.
    void set_thread_capacity(std::size_t events);

    /// Events dropped on full buffers since construction/reset.
    [[nodiscard]] std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }

    /// Every recorded event across all threads (snapshot; recording may
    /// continue concurrently and later events are simply not included).
    [[nodiscard]] std::vector<SpanEvent> snapshot() const;

    /// Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
    /// "ms"} with one phase-"X" complete event per span, ts/dur in
    /// microseconds relative to the process epoch.
    [[nodiscard]] std::string chrome_trace_json() const;

    /// Writes chrome_trace_json() to `path`. False on I/O failure.
    [[nodiscard]] bool write_chrome_trace(const std::string& path) const;

    /// Drops every recorded event and zeroes the drop counter. The
    /// per-thread buffers stay registered. Quiescent use only (tests,
    /// between tool runs): events recorded concurrently may be lost or
    /// survive, but nothing tears.
    void reset();

    // -- recording internals (used by TraceSpan, not call sites) --

    struct ThreadBuffer {
        explicit ThreadBuffer(std::size_t capacity) : events(capacity) {}
        std::vector<SpanEvent> events;
        std::atomic<std::size_t> count{0};  ///< published events
        std::int32_t depth = 0;             ///< open spans, owner thread only
    };

    /// This thread's buffer, registered on first use.
    [[nodiscard]] ThreadBuffer& local_buffer();
    void count_drop() { dropped_.fetch_add(1, std::memory_order_relaxed); }

  private:
    mutable std::mutex mutex_;  // guards buffers_ registration/snapshot
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::size_t> thread_capacity_{1 << 16};
};

/// The process-wide tracer every SERVET_TRACE_SPAN records into.
[[nodiscard]] Tracer& tracer();

/// RAII span: records [construction, destruction) into the calling
/// thread's buffer when tracing is enabled. Name is captured (and
/// truncated to SpanEvent::kMaxName-1) at construction.
class TraceSpan {
  public:
    explicit TraceSpan(const char* name);
    explicit TraceSpan(const std::string& name) : TraceSpan(name.c_str()) {}
    ~TraceSpan();
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    Tracer::ThreadBuffer* buffer_ = nullptr;  // null when disabled at entry
    std::uint64_t start_ns_ = 0;
    std::int32_t depth_ = 0;
    char name_[SpanEvent::kMaxName];
};

}  // namespace servet::obs

#define SERVET_OBS_CONCAT2(a, b) a##b
#define SERVET_OBS_CONCAT(a, b) SERVET_OBS_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define SERVET_TRACE_SPAN(name) \
    ::servet::obs::TraceSpan SERVET_OBS_CONCAT(servet_trace_span_, __LINE__)(name)
