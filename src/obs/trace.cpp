#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "base/clock.hpp"
#include "base/log.hpp"

namespace servet::obs {

void Tracer::set_thread_capacity(std::size_t events) {
    thread_capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
    thread_local ThreadBuffer* local = nullptr;
    if (local == nullptr) {
        auto buffer =
            std::make_unique<ThreadBuffer>(thread_capacity_.load(std::memory_order_relaxed));
        local = buffer.get();
        const std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::move(buffer));
    }
    return *local;
}

std::vector<SpanEvent> Tracer::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanEvent> out;
    for (const auto& buffer : buffers_) {
        const std::size_t n = buffer->count.load(std::memory_order_acquire);
        out.insert(out.end(), buffer->events.begin(),
                   buffer->events.begin() + static_cast<std::ptrdiff_t>(n));
    }
    return out;
}

std::string Tracer::chrome_trace_json() const {
    const std::vector<SpanEvent> events = snapshot();
    std::string out = "{\"traceEvents\": [";
    char line[256];
    for (std::size_t i = 0; i < events.size(); ++i) {
        const SpanEvent& e = events[i];
        std::snprintf(line, sizeof line,
                      "%s\n  {\"name\": \"%s\", \"cat\": \"servet\", \"ph\": \"X\", "
                      "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
                      i ? "," : "", e.name, static_cast<double>(e.start_ns) / 1000.0,
                      static_cast<double>(e.end_ns - e.start_ns) / 1000.0,
                      static_cast<int>(e.tid));
        out += line;
    }
    out += events.empty() ? "]" : "\n]";
    // droppedEvents in the footer makes a truncated trace self-describing:
    // a viewer (or a test) can tell "complete" from "buffers overflowed"
    // without access to the producing process.
    std::snprintf(line, sizeof line, ", \"droppedEvents\": %llu",
                  static_cast<unsigned long long>(dropped()));
    out += line;
    out += ", \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
    const std::uint64_t lost = dropped();
    if (lost > 0)
        SERVET_LOG_WARN("trace: %llu span(s) dropped on full thread buffers; the "
                        "export at %s is truncated (raise Tracer::set_thread_capacity)",
                        static_cast<unsigned long long>(lost), path.c_str());
    std::ofstream out(path);
    if (!out) return false;
    out << chrome_trace_json();
    return static_cast<bool>(out);
}

void Tracer::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) buffer->count.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
}

Tracer& tracer() {
    static Tracer* instance = new Tracer();  // never destroyed: worker threads may outlive main
    return *instance;
}

TraceSpan::TraceSpan(const char* name) {
    Tracer& t = tracer();
    if (!t.enabled()) return;
    buffer_ = &t.local_buffer();
    depth_ = buffer_->depth++;
    std::strncpy(name_, name, sizeof name_ - 1);
    name_[sizeof name_ - 1] = '\0';
    start_ns_ = monotonic_ns();
}

TraceSpan::~TraceSpan() {
    if (buffer_ == nullptr) return;
    --buffer_->depth;
    // Owner thread is the only writer of count: the relaxed read cannot
    // race; the release store publishes the event to snapshotters.
    const std::size_t index = buffer_->count.load(std::memory_order_relaxed);
    if (index >= buffer_->events.size()) {
        tracer().count_drop();
        return;
    }
    SpanEvent& event = buffer_->events[index];
    std::memcpy(event.name, name_, sizeof event.name);
    event.start_ns = start_ns_;
    event.end_ns = monotonic_ns();
    event.tid = thread_ordinal();
    event.depth = depth_;
    buffer_->count.store(index + 1, std::memory_order_release);
}

}  // namespace servet::obs
