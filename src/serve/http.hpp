// Minimal HTTP/1.1 for the profile service: an incremental request parser
// built for a non-blocking read loop (bytes arrive in arbitrary chunks —
// a request may be torn across many reads, or several pipelined requests
// may land in one), plus the response serializer. Only what `servet
// serve` speaks: GET/PUT, Content-Length bodies, keep-alive, ETag /
// If-None-Match. Anything outside that maps to a definite 4xx/5xx status
// rather than undefined behavior — the parser is the first thing on the
// server that hostile bytes reach.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace servet::serve {

struct HttpRequest {
    std::string method;  ///< verbatim ("GET", "PUT", ...)
    std::string target;  ///< raw request target as sent
    std::string path;    ///< target up to '?'
    std::string query;   ///< after '?', empty when absent
    int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 parse
    /// Header names lowercased (HTTP names are case-insensitive); values
    /// trimmed. Duplicate names: last one wins.
    std::map<std::string, std::string> headers;
    std::string body;
    bool keep_alive = true;

    /// Header value or nullptr. `name` must already be lowercase.
    [[nodiscard]] const std::string* header(const std::string& name) const;
};

/// Incremental request parser: feed() arbitrary byte chunks, pop complete
/// requests in arrival order. An error is sticky — the connection it came
/// from cannot be resynchronized and must be closed after the error
/// response is sent.
class HttpParser {
  public:
    struct Limits {
        std::size_t max_head_bytes = 8 * 1024;         ///< request line + headers
        std::size_t max_body_bytes = 16 * 1024 * 1024; ///< Content-Length cap
    };

    enum class State {
        NeedMore,  ///< no complete request buffered yet
        Ready,     ///< at least one complete request waiting in take_request()
        Error,     ///< malformed input; see error_status()/error_reason()
    };

    HttpParser();  ///< default Limits
    explicit HttpParser(Limits limits);

    /// Appends bytes and parses as far as possible. Returns state().
    State feed(std::string_view bytes);

    [[nodiscard]] State state() const;
    [[nodiscard]] bool has_request() const { return !ready_.empty(); }

    /// Pops the oldest complete request. Call only when has_request().
    [[nodiscard]] HttpRequest take_request();

    /// HTTP status for the failure (400, 413, 431, 501). 0 unless Error.
    [[nodiscard]] int error_status() const { return error_status_; }
    [[nodiscard]] const std::string& error_reason() const { return error_reason_; }

    /// Bytes buffered but not yet consumed by a parsed request.
    [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

  private:
    enum class Phase { Head, Body };

    void parse_available();
    bool parse_head(std::string_view head);
    void fail(int status, std::string reason);

    Limits limits_;
    std::string buffer_;
    Phase phase_ = Phase::Head;
    HttpRequest pending_;
    std::size_t body_remaining_ = 0;
    std::deque<HttpRequest> ready_;
    int error_status_ = 0;
    std::string error_reason_;
};

struct HttpResponse {
    int status = 0;
    std::string reason;
    int version_minor = 1;
    /// Header names lowercased, values trimmed — same grammar as requests.
    std::map<std::string, std::string> headers;
    std::string body;

    /// Header value or nullptr. `name` must already be lowercase.
    [[nodiscard]] const std::string* header(const std::string& name) const;
    /// The etag header's raw token with the wire quotes stripped; empty
    /// when absent (render_response always quotes, so this inverts it).
    [[nodiscard]] std::string etag_token() const;
};

/// Incremental response parser — the client half of the protocol
/// (`servet fetch`). Same torn-chunk discipline and header grammar as
/// HttpParser; one response per connection. A response without
/// content-length (and that isn't a bodiless 304/204/1xx) is delimited
/// by connection close: call finish_eof() when the peer closes to
/// complete it.
class HttpResponseParser {
  public:
    enum class State {
        NeedMore,  ///< response not complete yet
        Complete,  ///< response() is fully parsed
        Error,     ///< malformed input; see error_reason()
    };

    HttpResponseParser();  ///< default HttpParser::Limits
    explicit HttpResponseParser(HttpParser::Limits limits);

    /// Appends bytes and parses as far as possible. Returns state().
    State feed(std::string_view bytes);
    /// Signals connection close. Completes a length-less body; anything
    /// else still incomplete becomes an Error (truncated response).
    State finish_eof();

    [[nodiscard]] State state() const;
    [[nodiscard]] const HttpResponse& response() const { return response_; }
    [[nodiscard]] const std::string& error_reason() const { return error_reason_; }

  private:
    enum class Phase { Head, Body, Done };

    bool parse_head(std::string_view head);
    void fail(std::string reason);

    HttpParser::Limits limits_;
    std::string buffer_;
    Phase phase_ = Phase::Head;
    bool until_eof_ = false;
    std::size_t body_remaining_ = 0;
    HttpResponse response_;
    std::string error_reason_;
};

/// Reason phrase for the statuses the service emits.
[[nodiscard]] std::string_view status_reason(int status);

/// Serializes one response. `etag` (raw token, quoted on the wire) and
/// `close` add their headers when set; a 304 carries headers but no body
/// bytes regardless of `body`. `extra_headers` is pre-rendered
/// "name: value\r\n" lines appended verbatim (e.g. Retry-After on a 503
/// shed response).
[[nodiscard]] std::string render_response(int status, std::string_view content_type,
                                          std::string_view body, std::string_view etag = {},
                                          bool close = false,
                                          std::string_view extra_headers = {});

/// True when an If-None-Match / If-Match header value names `etag`:
/// "*", a quoted or bare token in a comma-separated list; weak
/// validators (W/"...") match too — the content hash is exact.
[[nodiscard]] bool etag_list_matches(const std::string& header_value,
                                     const std::string& etag);

}  // namespace servet::serve
