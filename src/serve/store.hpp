// Content-addressed profile store behind `servet serve`. A profile is
// addressed by the pair the measurement pipeline already computes: the
// machine fingerprint (Platform::fingerprint, the journal's identity
// check) and the suite options hash (core::suite_options_hash) — both
// 16-hex-digit tokens on the wire and on disk. Layout under the root:
//
//   <root>/<fingerprint>/<options>.profile   one upload, written atomically
//   <root>/<fingerprint>/HEAD                options hash of the latest upload
//
// so a fleet of machines with the same hardware converges on one entry,
// and a crashed upload never publishes a torn profile (write_file_atomic
// with unique O_EXCL temp names — concurrent uploads are the normal case
// here, not a race). Hot entries are served from an in-memory LRU keyed
// on (fingerprint, options); the disk is only consulted on a miss.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace servet::serve {

struct StoreStats {
    std::uint64_t cache_hits = 0;    ///< LRU served the body
    std::uint64_t cache_misses = 0;  ///< disk read (present or absent)
    std::uint64_t puts = 0;          ///< accepted uploads
    std::uint64_t evictions = 0;     ///< LRU entries displaced
};

class ProfileStore {
  public:
    /// `cache_entries` bounds the LRU (0 disables in-memory caching).
    ProfileStore(std::string root_dir, std::size_t cache_entries);

    enum class PutStatus {
        Stored,          ///< accepted, on disk, HEAD updated
        InvalidKey,      ///< fingerprint/options not a 16-hex-digit token
        InvalidProfile,  ///< body does not parse as a servet profile
        IoError,         ///< disk write failed
        CasMismatch,     ///< If-Match precondition failed (HEAD moved)
    };

    /// Accepts an upload: validates the keys and the body (a body that
    /// core::Profile::parse rejects never reaches disk), writes the
    /// profile atomically, then moves HEAD to it. When `if_match` is
    /// non-null it is an If-Match header value (quoted/bare tokens or
    /// "*") naming the HEAD the caller believes is current: puts are
    /// serialized, and a precondition that no longer holds returns
    /// CasMismatch without touching disk — lost-update-proof HEAD moves.
    [[nodiscard]] PutStatus put(const std::string& fingerprint, const std::string& options,
                                const std::string& body,
                                const std::string* if_match = nullptr);

    /// Stores one watch-series sample under
    /// `<root>/<fp>/series-<options>/<tick>.sample`. The body is the
    /// watch sample codec's text ("metric <name> <value>" lines);
    /// anything else is InvalidProfile. Content-addressed per tick —
    /// replaying the same PUT is idempotent, which is what lets the
    /// watch push path retry and drain its spool safely.
    [[nodiscard]] PutStatus put_sample(const std::string& fingerprint,
                                       const std::string& options,
                                       const std::string& tick, const std::string& body);

    /// The stored sample text; nullopt when absent or keys are invalid.
    [[nodiscard]] std::optional<std::string> get_sample(const std::string& fingerprint,
                                                        const std::string& options,
                                                        const std::string& tick);

    /// Tick tokens on the wire: 1-10 decimal digits, no sign.
    [[nodiscard]] static bool valid_tick(const std::string& tick);

    /// The stored profile text for the exact (fingerprint, options) pair,
    /// LRU-cached; nullopt when absent.
    [[nodiscard]] std::optional<std::string> get(const std::string& fingerprint,
                                                 const std::string& options);

    /// Options hash of the latest upload for the fingerprint; nullopt for
    /// an unknown fingerprint.
    [[nodiscard]] std::optional<std::string> head(const std::string& fingerprint);

    /// Exactly 16 lowercase hex digits — the wire/disk form of the
    /// 64-bit fingerprints and options hashes.
    [[nodiscard]] static bool valid_key(const std::string& key);

    [[nodiscard]] StoreStats stats() const;
    [[nodiscard]] const std::string& root() const { return root_; }

  private:
    [[nodiscard]] std::string profile_path(const std::string& fingerprint,
                                           const std::string& options) const;
    [[nodiscard]] std::string head_path(const std::string& fingerprint) const;
    void cache_insert_locked(const std::string& key, const std::string& body);

    std::string root_;
    std::size_t cache_entries_;

    /// Serializes put() end to end so an If-Match check and the write it
    /// guards are one atomic step. gets stay concurrent (mutex_ only).
    std::mutex put_mutex_;
    mutable std::mutex mutex_;
    /// MRU-first list of (cache key, body); index_ points into it.
    std::list<std::pair<std::string, std::string>> lru_;
    std::unordered_map<std::string, std::list<std::pair<std::string, std::string>>::iterator>
        index_;
    /// fingerprint -> latest options hash, mirroring the HEAD files.
    std::map<std::string, std::string> heads_;
    StoreStats stats_;
};

}  // namespace servet::serve
