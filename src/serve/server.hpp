// The socket layer of `servet serve`: a non-blocking epoll accept/read
// loop feeding a small worker pool. One I/O thread owns the listener and
// every idle connection; it reads whatever bytes are available, feeds
// each connection's incremental HttpParser, and hands a connection to the
// worker queue the moment it holds at least one complete request (or a
// protocol error). Connections are registered EPOLLONESHOT, so ownership
// is unambiguous: while a worker is computing and writing responses the
// fd cannot fire again; the worker re-arms it (or closes it) when done.
// Shutdown is signal-driven: request_stop() is async-signal-safe (an
// eventfd write), in-flight requests finish, and join() returns once the
// listener, workers, and every connection are gone — `servet serve` exits
// 0 on SIGTERM.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/handlers.hpp"
#include "serve/store.hpp"

namespace servet::serve {

struct ServeOptions {
    std::string store_dir = "servet-store";
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound one from port()
    int threads = 2;         ///< worker pool size
    std::size_t cache_entries = 256;    ///< store LRU capacity
    /// Beyond this, new connections are shed with a best-effort
    /// `503 + Retry-After` instead of being accepted unboundedly.
    std::size_t max_connections = 1024;
    /// A connection idle this long (no bytes, no in-flight request) is
    /// reaped — the slow-loris defense. <= 0 disables reaping.
    double idle_timeout_seconds = 30.0;
    /// Shared-secret auth token; when non-empty every route except
    /// /v1/healthz requires `authorization: Bearer <token>`.
    std::string token;
    HttpParser::Limits limits;
};

class ServeServer {
  public:
    explicit ServeServer(ServeOptions options);
    ~ServeServer();

    ServeServer(const ServeServer&) = delete;
    ServeServer& operator=(const ServeServer&) = delete;

    /// Binds, listens, and spawns the I/O thread + workers. False (with a
    /// diagnostic in `error`) when the socket setup fails.
    [[nodiscard]] bool start(std::string* error);

    /// The bound TCP port (resolves port 0 requests).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Initiates shutdown. Async-signal-safe: callable from a SIGTERM
    /// handler. Idempotent.
    void request_stop();

    /// Blocks until the server has fully shut down (requires a
    /// request_stop(), from a signal handler or another thread).
    void join();

    [[nodiscard]] ProfileStore& store() { return store_; }
    [[nodiscard]] Handler& handler() { return handler_; }

  private:
    using Clock = std::chrono::steady_clock;
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    struct Connection {
        int fd = -1;
        HttpParser parser;
        bool saw_eof = false;  ///< peer half-closed; close once responses drain
        /// True from the moment the I/O thread claims the readable event
        /// until the worker re-arms it — the reaper never touches a busy
        /// connection (the worker owns its lifetime). Guarded by
        /// conns_mutex_.
        bool busy = false;
        Clock::time_point last_activity{};  ///< guarded by conns_mutex_
        std::size_t wheel_slot = kNoSlot;   ///< guarded by conns_mutex_
        explicit Connection(HttpParser::Limits limits) : parser(limits) {}
    };

    void io_loop();
    void worker_loop();
    /// Serves every complete request buffered on the connection. Returns
    /// false when the connection must close (error, Connection: close,
    /// peer EOF, write failure).
    [[nodiscard]] bool serve_ready_requests(Connection* conn);
    void enqueue(Connection* conn);
    void close_connection(Connection* conn);
    [[nodiscard]] bool rearm(Connection* conn);
    /// Hands a connection back to the epoll set: clears busy, refreshes
    /// its idle budget, and re-arms — all under conns_mutex_, so the
    /// reaper can never free a connection the worker still holds. Closes
    /// it when re-arming fails.
    void release_connection(Connection* conn);
    [[nodiscard]] bool send_all(int fd, std::string_view bytes);

    // ---- idle-connection timer wheel (slow-loris defense) ----
    // Hashed wheel with fixed-width slots; a connection sits in the slot
    // where its idle budget runs out. Lazily re-hashed on expiry: the
    // reaper re-places connections that turned out to be active or busy
    // and closes the truly idle. Runs on the I/O thread between epoll
    // batches; every wheel/flag mutation happens under conns_mutex_.
    [[nodiscard]] std::size_t wheel_slot_for(Clock::time_point when) const;
    void wheel_place_locked(Connection* conn, Clock::time_point expiry);
    void wheel_remove_locked(Connection* conn);
    void touch_locked(Connection* conn, Clock::time_point now);
    void reap_idle();

    ServeOptions options_;
    ProfileStore store_;
    Handler handler_;

    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool joined_ = false;

    std::thread io_thread_;
    std::vector<std::thread> workers_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Connection*> queue_;
    bool workers_stop_ = false;

    std::mutex conns_mutex_;
    std::unordered_set<Connection*> conns_;
    std::vector<std::unordered_set<Connection*>> wheel_;  ///< empty = reaping off
    Clock::time_point wheel_epoch_{};
    std::uint64_t wheel_cursor_ = 0;  ///< last absolute tick processed
    std::string shed_response_;       ///< pre-rendered 503 + Retry-After
};

}  // namespace servet::serve
