#include "serve/store.hpp"

#include <utility>

#include "base/fs.hpp"
#include "core/profile.hpp"
#include "serve/http.hpp"

namespace servet::serve {

namespace {
std::string cache_key(const std::string& fingerprint, const std::string& options) {
    return fingerprint + '/' + options;
}
}  // namespace

ProfileStore::ProfileStore(std::string root_dir, std::size_t cache_entries)
    : root_(std::move(root_dir)), cache_entries_(cache_entries) {}

bool ProfileStore::valid_key(const std::string& key) {
    if (key.size() != 16) return false;
    for (const char c : key) {
        const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) return false;
    }
    return true;
}

std::string ProfileStore::profile_path(const std::string& fingerprint,
                                       const std::string& options) const {
    return root_ + '/' + fingerprint + '/' + options + ".profile";
}

std::string ProfileStore::head_path(const std::string& fingerprint) const {
    return root_ + '/' + fingerprint + "/HEAD";
}

void ProfileStore::cache_insert_locked(const std::string& key, const std::string& body) {
    if (cache_entries_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = body;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, body);
    index_[key] = lru_.begin();
    while (lru_.size() > cache_entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

ProfileStore::PutStatus ProfileStore::put(const std::string& fingerprint,
                                          const std::string& options,
                                          const std::string& body,
                                          const std::string* if_match) {
    if (!valid_key(fingerprint) || !valid_key(options)) return PutStatus::InvalidKey;
    if (!core::Profile::parse(body)) return PutStatus::InvalidProfile;

    std::lock_guard<std::mutex> put_lock(put_mutex_);
    if (if_match != nullptr) {
        // Compare-and-swap: the precondition names the HEAD the caller
        // read. "*" means "some HEAD must exist". Evaluated under the
        // put lock, so no concurrent put can slip between check & write.
        const auto current = head(fingerprint);
        const bool holds =
            current ? etag_list_matches(*if_match, *current)
                    : false;
        if (!holds) return PutStatus::CasMismatch;
    }

    const std::string path = profile_path(fingerprint, options);
    if (!create_parent_dirs(path)) return PutStatus::IoError;
    // The profile must be durable before HEAD names it: a crash between
    // the two writes leaves the previous HEAD pointing at its previous
    // (still complete) profile.
    if (!write_file_atomic(path, body)) return PutStatus::IoError;
    if (!write_file_atomic(head_path(fingerprint), options + '\n'))
        return PutStatus::IoError;

    std::lock_guard<std::mutex> lock(mutex_);
    cache_insert_locked(cache_key(fingerprint, options), body);
    heads_[fingerprint] = options;
    ++stats_.puts;
    return PutStatus::Stored;
}

std::optional<std::string> ProfileStore::get(const std::string& fingerprint,
                                             const std::string& options) {
    if (!valid_key(fingerprint) || !valid_key(options)) return std::nullopt;
    const std::string key = cache_key(fingerprint, options);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.cache_hits;
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->second;
        }
        ++stats_.cache_misses;
    }
    std::string body;
    if (read_file(profile_path(fingerprint, options), &body) != FileRead::Ok)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    cache_insert_locked(key, body);
    return body;
}

std::optional<std::string> ProfileStore::head(const std::string& fingerprint) {
    if (!valid_key(fingerprint)) return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = heads_.find(fingerprint);
        if (it != heads_.end()) return it->second;
    }
    std::string text;
    if (read_file(head_path(fingerprint), &text) != FileRead::Ok) return std::nullopt;
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) text.pop_back();
    if (!valid_key(text)) return std::nullopt;  // corrupt HEAD: treat as absent
    std::lock_guard<std::mutex> lock(mutex_);
    heads_[fingerprint] = text;
    return text;
}

bool ProfileStore::valid_tick(const std::string& tick) {
    if (tick.empty() || tick.size() > 10) return false;
    for (const char c : tick)
        if (c < '0' || c > '9') return false;
    return true;
}

namespace {
/// The watch sample codec's line grammar: every non-empty line is
/// "metric <name> <value>". Enough validation to keep arbitrary bytes
/// out of the store without serve depending on the watch layer.
bool valid_sample_body(const std::string& body) {
    if (body.empty() || body.size() > 1024 * 1024) return false;
    std::size_t pos = 0;
    bool any = false;
    while (pos < body.size()) {
        const std::size_t end = std::min(body.find('\n', pos), body.size());
        const std::string_view line(body.data() + pos, end - pos);
        pos = end + 1;
        if (line.empty()) continue;
        if (!line.starts_with("metric ") || line.size() <= 7) return false;
        any = true;
    }
    return any;
}

std::string sample_path(const std::string& root, const std::string& fingerprint,
                        const std::string& options, const std::string& tick) {
    return root + '/' + fingerprint + "/series-" + options + '/' + tick + ".sample";
}
}  // namespace

ProfileStore::PutStatus ProfileStore::put_sample(const std::string& fingerprint,
                                                 const std::string& options,
                                                 const std::string& tick,
                                                 const std::string& body) {
    if (!valid_key(fingerprint) || !valid_key(options) || !valid_tick(tick))
        return PutStatus::InvalidKey;
    if (!valid_sample_body(body)) return PutStatus::InvalidProfile;
    const std::string path = sample_path(root_, fingerprint, options, tick);
    if (!create_parent_dirs(path)) return PutStatus::IoError;
    if (!write_file_atomic(path, body)) return PutStatus::IoError;
    return PutStatus::Stored;
}

std::optional<std::string> ProfileStore::get_sample(const std::string& fingerprint,
                                                    const std::string& options,
                                                    const std::string& tick) {
    if (!valid_key(fingerprint) || !valid_key(options) || !valid_tick(tick))
        return std::nullopt;
    std::string body;
    if (read_file(sample_path(root_, fingerprint, options, tick), &body) != FileRead::Ok)
        return std::nullopt;
    return body;
}

StoreStats ProfileStore::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace servet::serve
