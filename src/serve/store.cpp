#include "serve/store.hpp"

#include <utility>

#include "base/fs.hpp"
#include "core/profile.hpp"

namespace servet::serve {

namespace {
std::string cache_key(const std::string& fingerprint, const std::string& options) {
    return fingerprint + '/' + options;
}
}  // namespace

ProfileStore::ProfileStore(std::string root_dir, std::size_t cache_entries)
    : root_(std::move(root_dir)), cache_entries_(cache_entries) {}

bool ProfileStore::valid_key(const std::string& key) {
    if (key.size() != 16) return false;
    for (const char c : key) {
        const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) return false;
    }
    return true;
}

std::string ProfileStore::profile_path(const std::string& fingerprint,
                                       const std::string& options) const {
    return root_ + '/' + fingerprint + '/' + options + ".profile";
}

std::string ProfileStore::head_path(const std::string& fingerprint) const {
    return root_ + '/' + fingerprint + "/HEAD";
}

void ProfileStore::cache_insert_locked(const std::string& key, const std::string& body) {
    if (cache_entries_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = body;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, body);
    index_[key] = lru_.begin();
    while (lru_.size() > cache_entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

ProfileStore::PutStatus ProfileStore::put(const std::string& fingerprint,
                                          const std::string& options,
                                          const std::string& body) {
    if (!valid_key(fingerprint) || !valid_key(options)) return PutStatus::InvalidKey;
    if (!core::Profile::parse(body)) return PutStatus::InvalidProfile;

    const std::string path = profile_path(fingerprint, options);
    if (!create_parent_dirs(path)) return PutStatus::IoError;
    // The profile must be durable before HEAD names it: a crash between
    // the two writes leaves the previous HEAD pointing at its previous
    // (still complete) profile.
    if (!write_file_atomic(path, body)) return PutStatus::IoError;
    if (!write_file_atomic(head_path(fingerprint), options + '\n'))
        return PutStatus::IoError;

    std::lock_guard<std::mutex> lock(mutex_);
    cache_insert_locked(cache_key(fingerprint, options), body);
    heads_[fingerprint] = options;
    ++stats_.puts;
    return PutStatus::Stored;
}

std::optional<std::string> ProfileStore::get(const std::string& fingerprint,
                                             const std::string& options) {
    if (!valid_key(fingerprint) || !valid_key(options)) return std::nullopt;
    const std::string key = cache_key(fingerprint, options);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.cache_hits;
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->second;
        }
        ++stats_.cache_misses;
    }
    std::string body;
    if (read_file(profile_path(fingerprint, options), &body) != FileRead::Ok)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    cache_insert_locked(key, body);
    return body;
}

std::optional<std::string> ProfileStore::head(const std::string& fingerprint) {
    if (!valid_key(fingerprint)) return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = heads_.find(fingerprint);
        if (it != heads_.end()) return it->second;
    }
    std::string text;
    if (read_file(head_path(fingerprint), &text) != FileRead::Ok) return std::nullopt;
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) text.pop_back();
    if (!valid_key(text)) return std::nullopt;  // corrupt HEAD: treat as absent
    std::lock_guard<std::mutex> lock(mutex_);
    heads_[fingerprint] = text;
    return text;
}

StoreStats ProfileStore::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace servet::serve
