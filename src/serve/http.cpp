#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace servet::serve {

namespace {

std::string to_lower(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
        text.remove_prefix(1);
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                             text.back() == '\r'))
        text.remove_suffix(1);
    return text;
}

/// A method token per RFC 9110: at least one tchar; the service only ever
/// routes GET/PUT but the parser must classify anything else as a clean
/// 501/405 problem rather than a 400.
bool valid_method(std::string_view method) {
    if (method.empty() || method.size() > 16) return false;
    return std::all_of(method.begin(), method.end(), [](unsigned char c) {
        return std::isalpha(c) != 0 && std::isupper(c) != 0;
    });
}

/// Case-insensitive token search in a comma-separated header value.
bool connection_lists(std::string_view value, std::string_view token) {
    const std::string lowered = to_lower(value);
    std::size_t pos = 0;
    while (pos <= lowered.size()) {
        const std::size_t comma = std::min(lowered.find(',', pos), lowered.size());
        if (trim(std::string_view(lowered).substr(pos, comma - pos)) == token) return true;
        pos = comma + 1;
    }
    return false;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
    const auto it = headers.find(name);
    return it == headers.end() ? nullptr : &it->second;
}

HttpParser::HttpParser() : HttpParser(Limits{}) {}

HttpParser::HttpParser(Limits limits) : limits_(limits) {}

HttpParser::State HttpParser::state() const {
    if (error_status_ != 0) return State::Error;
    return ready_.empty() ? State::NeedMore : State::Ready;
}

HttpParser::State HttpParser::feed(std::string_view bytes) {
    if (error_status_ != 0) return State::Error;
    buffer_.append(bytes.data(), bytes.size());
    parse_available();
    return state();
}

HttpRequest HttpParser::take_request() {
    HttpRequest request = std::move(ready_.front());
    ready_.pop_front();
    return request;
}

void HttpParser::fail(int status, std::string reason) {
    error_status_ = status;
    error_reason_ = std::move(reason);
}

void HttpParser::parse_available() {
    // Loop: one buffer may hold the tail of a torn request, several
    // pipelined ones, or both.
    while (error_status_ == 0) {
        if (phase_ == Phase::Head) {
            // Head ends at the first blank line; tolerate both CRLF and
            // bare LF so hand-typed test traffic parses too.
            std::size_t head_end = std::string::npos;
            std::size_t body_start = 0;
            const std::size_t crlf = buffer_.find("\r\n\r\n");
            const std::size_t lf = buffer_.find("\n\n");
            if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
                head_end = crlf;
                body_start = crlf + 4;
            } else if (lf != std::string::npos) {
                head_end = lf;
                body_start = lf + 2;
            }
            if (head_end == std::string::npos) {
                if (buffer_.size() > limits_.max_head_bytes)
                    fail(431, "request head exceeds " +
                                  std::to_string(limits_.max_head_bytes) + " bytes");
                return;  // NeedMore
            }
            if (head_end > limits_.max_head_bytes) {
                fail(431, "request head exceeds " +
                              std::to_string(limits_.max_head_bytes) + " bytes");
                return;
            }
            const std::string head = buffer_.substr(0, head_end);
            buffer_.erase(0, body_start);
            if (!parse_head(head)) return;
            phase_ = Phase::Body;
        }

        if (body_remaining_ > buffer_.size()) return;  // NeedMore
        pending_.body = buffer_.substr(0, body_remaining_);
        buffer_.erase(0, body_remaining_);
        body_remaining_ = 0;
        ready_.push_back(std::move(pending_));
        pending_ = HttpRequest{};
        phase_ = Phase::Head;
        if (buffer_.empty()) return;
    }
}

bool HttpParser::parse_head(std::string_view head) {
    pending_ = HttpRequest{};

    // Request line: METHOD SP TARGET SP HTTP/1.x
    std::size_t line_end = std::min(head.find('\n'), head.size());
    std::string_view request_line = trim(head.substr(0, line_end));
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos
                                      : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        fail(400, "malformed request line");
        return false;
    }
    pending_.method = std::string(request_line.substr(0, sp1));
    pending_.target = std::string(trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
    const std::string_view version = trim(request_line.substr(sp2 + 1));
    if (!valid_method(pending_.method)) {
        fail(400, "malformed method token");
        return false;
    }
    if (pending_.target.empty() || pending_.target.front() != '/') {
        fail(400, "request target must be an absolute path");
        return false;
    }
    if (version == "HTTP/1.1") {
        pending_.version_minor = 1;
    } else if (version == "HTTP/1.0") {
        pending_.version_minor = 0;
    } else {
        fail(400, "unsupported protocol version");
        return false;
    }
    const std::size_t q = pending_.target.find('?');
    pending_.path = pending_.target.substr(0, q);
    pending_.query = q == std::string::npos ? "" : pending_.target.substr(q + 1);

    // Header lines.
    std::size_t pos = line_end == head.size() ? head.size() : line_end + 1;
    while (pos < head.size()) {
        line_end = std::min(head.find('\n', pos), head.size());
        const std::string_view line =
            trim(std::string_view(head).substr(pos, line_end - pos));
        pos = line_end + 1;
        if (line.empty()) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            fail(400, "malformed header line");
            return false;
        }
        const std::string_view name = line.substr(0, colon);
        if (name.find(' ') != std::string_view::npos ||
            name.find('\t') != std::string_view::npos) {
            fail(400, "whitespace in header name");
            return false;
        }
        pending_.headers[to_lower(name)] = std::string(trim(line.substr(colon + 1)));
    }

    if (pending_.header("transfer-encoding") != nullptr) {
        fail(501, "transfer-encoding is not supported");
        return false;
    }
    body_remaining_ = 0;
    if (const std::string* length = pending_.header("content-length")) {
        std::size_t value = 0;
        const auto [end, ec] =
            std::from_chars(length->data(), length->data() + length->size(), value);
        if (ec != std::errc{} || end != length->data() + length->size()) {
            fail(400, "malformed content-length");
            return false;
        }
        if (value > limits_.max_body_bytes) {
            fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) + " bytes");
            return false;
        }
        body_remaining_ = value;
    }

    pending_.keep_alive = pending_.version_minor >= 1;
    if (const std::string* connection = pending_.header("connection")) {
        if (connection_lists(*connection, "close")) pending_.keep_alive = false;
        if (connection_lists(*connection, "keep-alive")) pending_.keep_alive = true;
    }
    return true;
}

const std::string* HttpResponse::header(const std::string& name) const {
    const auto it = headers.find(name);
    return it == headers.end() ? nullptr : &it->second;
}

std::string HttpResponse::etag_token() const {
    const std::string* raw = header("etag");
    if (raw == nullptr) return "";
    std::string_view token = *raw;
    if (token.size() >= 2 && token.front() == '"' && token.back() == '"')
        token = token.substr(1, token.size() - 2);
    return std::string(token);
}

HttpResponseParser::HttpResponseParser() : HttpResponseParser(HttpParser::Limits{}) {}

HttpResponseParser::HttpResponseParser(HttpParser::Limits limits) : limits_(limits) {}

HttpResponseParser::State HttpResponseParser::state() const {
    if (!error_reason_.empty()) return State::Error;
    return phase_ == Phase::Done ? State::Complete : State::NeedMore;
}

void HttpResponseParser::fail(std::string reason) { error_reason_ = std::move(reason); }

HttpResponseParser::State HttpResponseParser::feed(std::string_view bytes) {
    if (state() != State::NeedMore) return state();
    buffer_.append(bytes.data(), bytes.size());

    if (phase_ == Phase::Head) {
        // Head ends at the first blank line; tolerate CRLF and bare LF
        // like the request parser.
        std::size_t head_end = std::string::npos;
        std::size_t body_start = 0;
        const std::size_t crlf = buffer_.find("\r\n\r\n");
        const std::size_t lf = buffer_.find("\n\n");
        if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
            head_end = crlf;
            body_start = crlf + 4;
        } else if (lf != std::string::npos) {
            head_end = lf;
            body_start = lf + 2;
        }
        if (head_end == std::string::npos) {
            if (buffer_.size() > limits_.max_head_bytes)
                fail("response head exceeds " + std::to_string(limits_.max_head_bytes) +
                     " bytes");
            return state();
        }
        const std::string head = buffer_.substr(0, head_end);
        buffer_.erase(0, body_start);
        if (!parse_head(head)) return state();
        phase_ = Phase::Body;
    }

    if (phase_ == Phase::Body && !until_eof_) {
        if (buffer_.size() > body_remaining_) {
            fail("bytes past the declared response body");
            return state();
        }
        if (buffer_.size() == body_remaining_) {
            response_.body = std::move(buffer_);
            buffer_.clear();
            phase_ = Phase::Done;
        }
    }
    return state();
}

HttpResponseParser::State HttpResponseParser::finish_eof() {
    if (state() != State::NeedMore) return state();
    if (phase_ == Phase::Body && until_eof_) {
        response_.body = std::move(buffer_);
        buffer_.clear();
        phase_ = Phase::Done;
    } else {
        fail("connection closed mid-response");
    }
    return state();
}

bool HttpResponseParser::parse_head(std::string_view head) {
    // Status line: HTTP/1.x SP NNN [SP reason]
    std::size_t line_end = std::min(head.find('\n'), head.size());
    const std::string_view status_line = trim(head.substr(0, line_end));
    const std::size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos) {
        fail("malformed status line");
        return false;
    }
    const std::string_view version = status_line.substr(0, sp1);
    if (version == "HTTP/1.1") {
        response_.version_minor = 1;
    } else if (version == "HTTP/1.0") {
        response_.version_minor = 0;
    } else {
        fail("unsupported protocol version");
        return false;
    }
    const std::string_view rest = trim(status_line.substr(sp1 + 1));
    const std::size_t sp2 = std::min(rest.find(' '), rest.size());
    const std::string_view code = rest.substr(0, sp2);
    int status = 0;
    const auto [end, ec] = std::from_chars(code.data(), code.data() + code.size(), status);
    if (ec != std::errc{} || end != code.data() + code.size() || status < 100 ||
        status > 599) {
        fail("malformed status code");
        return false;
    }
    response_.status = status;
    if (sp2 < rest.size()) response_.reason = std::string(trim(rest.substr(sp2 + 1)));

    // Header lines — same grammar as requests.
    std::size_t pos = line_end == head.size() ? head.size() : line_end + 1;
    while (pos < head.size()) {
        line_end = std::min(head.find('\n', pos), head.size());
        const std::string_view line =
            trim(std::string_view(head).substr(pos, line_end - pos));
        pos = line_end + 1;
        if (line.empty()) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            fail("malformed header line");
            return false;
        }
        const std::string_view name = line.substr(0, colon);
        if (name.find(' ') != std::string_view::npos ||
            name.find('\t') != std::string_view::npos) {
            fail("whitespace in header name");
            return false;
        }
        response_.headers[to_lower(name)] = std::string(trim(line.substr(colon + 1)));
    }

    if (response_.header("transfer-encoding") != nullptr) {
        fail("transfer-encoding is not supported");
        return false;
    }
    // 304/204/1xx never carry a body regardless of headers; otherwise a
    // content-length delimits it and its absence means read-to-EOF.
    const bool bodiless =
        response_.status == 304 || response_.status == 204 || response_.status < 200;
    body_remaining_ = 0;
    until_eof_ = false;
    if (!bodiless) {
        if (const std::string* length = response_.header("content-length")) {
            std::size_t value = 0;
            const auto [lend, lec] =
                std::from_chars(length->data(), length->data() + length->size(), value);
            if (lec != std::errc{} || lend != length->data() + length->size()) {
                fail("malformed content-length");
                return false;
            }
            if (value > limits_.max_body_bytes) {
                fail("body exceeds " + std::to_string(limits_.max_body_bytes) + " bytes");
                return false;
            }
            body_remaining_ = value;
        } else {
            until_eof_ = true;
        }
    }
    return true;
}

std::string_view status_reason(int status) {
    switch (status) {
        case 200: return "OK";
        case 201: return "Created";
        case 304: return "Not Modified";
        case 400: return "Bad Request";
        case 401: return "Unauthorized";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 411: return "Length Required";
        case 412: return "Precondition Failed";
        case 413: return "Content Too Large";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 501: return "Not Implemented";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

bool etag_list_matches(const std::string& header_value, const std::string& etag) {
    std::size_t pos = 0;
    while (pos <= header_value.size()) {
        const std::size_t comma =
            std::min(header_value.find(',', pos), header_value.size());
        std::string candidate = header_value.substr(pos, comma - pos);
        pos = comma + 1;
        const auto strip = [&](char c) {
            while (!candidate.empty() && candidate.front() == c)
                candidate.erase(candidate.begin());
            while (!candidate.empty() && candidate.back() == c) candidate.pop_back();
        };
        strip(' ');
        if (candidate.starts_with("W/")) candidate.erase(0, 2);
        strip('"');
        if (candidate == "*" || candidate == etag) return true;
    }
    return false;
}

std::string render_response(int status, std::string_view content_type,
                            std::string_view body, std::string_view etag, bool close,
                            std::string_view extra_headers) {
    // A 304 is a header-only promise about an entity the client already
    // holds: advertising content-length 0 is correct, sending bytes is not.
    const bool send_body = status != 304;
    std::string out = "HTTP/1.1 " + std::to_string(status) + ' ';
    out += status_reason(status);
    out += "\r\nserver: servet-serve/1\r\n";
    if (!content_type.empty() && send_body && !body.empty()) {
        out += "content-type: ";
        out += content_type;
        out += "\r\n";
    }
    if (!etag.empty()) {
        out += "etag: \"";
        out += etag;
        out += "\"\r\n";
    }
    if (close) out += "connection: close\r\n";
    out += extra_headers;
    out += "content-length: " + std::to_string(send_body ? body.size() : 0) + "\r\n\r\n";
    if (send_body) out += body;
    return out;
}

}  // namespace servet::serve
