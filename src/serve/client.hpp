// Minimal blocking HTTP/1.1 client — the consumer half of the profile
// service. `servet fetch` uses it so nodes can self-provision a profile
// from a `servet serve` store at boot: one GET per call, conditional via
// If-None-Match when the caller already holds an ETag, response parsed
// by the same serve/http grammar the server speaks. Numeric IPv4 hosts
// only (the store runs on the loopback or a rack-local address); no TLS
// — same trust model as the server.
#pragma once

#include <string>

#include "serve/http.hpp"

namespace servet::serve {

struct FetchOptions {
    std::string host = "127.0.0.1";  ///< numeric IPv4 address
    int port = 0;
    std::string path;  ///< absolute request path, e.g. "/v1/profile/<fp>"
    /// Raw ETag token from a previous fetch; when non-empty the request
    /// carries If-None-Match and an unchanged resource answers 304.
    std::string etag;
    double timeout_seconds = 10.0;  ///< per socket operation
};

struct FetchResult {
    /// True when the HTTP exchange completed (any status); false on a
    /// transport or parse failure, described in `error`.
    bool ok = false;
    std::string error;
    HttpResponse response;
};

/// One blocking GET. Opens a connection, sends the request with
/// Connection: close, reads until the response completes or EOF.
[[nodiscard]] FetchResult http_fetch(const FetchOptions& options);

}  // namespace servet::serve
