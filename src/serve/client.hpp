// Fault-tolerant blocking HTTP/1.1 client — the consumer half of the
// profile service. `servet fetch` self-provisions a node from a `servet
// serve` store with it, and `servet watch --push` publishes per-tick
// samples through it, so it has to survive the transport failures a
// fleet actually sees: unroutable hosts, servers that die mid-response,
// byte-trickling peers, transient resets. The discipline mirrors PR 3's
// measurement pipeline:
//
//   - every socket operation (connect included, via non-blocking connect
//     + poll) is bounded by a per-operation timeout,
//   - the whole call — attempts, backoffs, trickled bytes — is bounded
//     by one overall deadline, so a hostile peer cannot pin a node,
//   - failures carry stable machine-readable codes (net.connect,
//     net.timeout, net.reset, net.closed, http.malformed, ...) the CLI
//     and tests key on,
//   - retries follow a RetryPolicy: capped exponential backoff with
//     deterministic seeded jitter, applied only to requests that are
//     safe to repeat (GETs, and PUTs the caller marks idempotent — the
//     store is content-addressed, so replaying an upload is a no-op),
//   - the attempt sequence is recorded in a deterministic trace: two
//     runs against the same failure sequence with the same seed produce
//     byte-identical traces (no wall-clock values in the trace).
//
// Numeric IPv4 hosts only (the store runs on the loopback or a
// rack-local address); no TLS — the shared-secret token (see
// docs/serve.md) is the auth story for non-loopback binds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/http.hpp"

namespace servet::serve {

/// Stable error codes (FetchResult::code / FetchAttempt::code):
///   net.option     invalid FetchOptions (no retry)
///   net.connect    connection refused / unreachable
///   net.timeout    a per-operation timeout expired ("timed out after Ns")
///   net.deadline   the overall deadline expired
///   net.reset      ECONNRESET / EPIPE mid-exchange
///   net.closed     peer closed before a complete response (truncation)
///   net.io         any other socket-level errno
///   http.malformed response bytes violate the HTTP grammar (no retry)

struct RetryPolicy {
    int max_attempts = 1;             ///< total attempts; 1 = no retries
    double backoff_initial_ms = 50.0; ///< first retry's base backoff
    double backoff_multiplier = 2.0;  ///< growth per retry
    double backoff_cap_ms = 2000.0;   ///< backoff ceiling
    /// Multiplicative jitter amplitude in [0,1): each backoff is
    /// base * (1 ± jitter), drawn from an Rng seeded by `seed` — the
    /// same seed always yields the same backoff sequence.
    double jitter = 0.2;
    std::uint64_t seed = 0x5eedULL;
};

struct FetchOptions {
    std::string host = "127.0.0.1";  ///< numeric IPv4 address
    int port = 0;
    std::string path;        ///< absolute request path, e.g. "/v1/profile/<fp>"
    std::string method = "GET";
    std::string body;        ///< request body (PUT)
    std::string content_type;///< body's content-type (sent when body non-empty)
    /// Raw ETag token from a previous fetch; when non-empty a GET carries
    /// If-None-Match and an unchanged resource answers 304.
    std::string etag;
    /// Compare-and-swap precondition: when non-empty a PUT carries
    /// If-Match (raw token, or "*" for "must already exist").
    std::string if_match;
    /// Shared-secret auth token; sent as `authorization: Bearer <token>`.
    std::string token;
    double timeout_seconds = 10.0;  ///< per socket operation (and connect)
    /// Wall-clock cap on the whole call: every attempt, every backoff,
    /// every trickled byte. 0 = derive as 6 * timeout_seconds.
    double deadline_seconds = 0.0;
    /// Allow retrying a non-GET. Off by default (a generic PUT is not
    /// safe to repeat); the watch push path turns it on because its PUTs
    /// are content-addressed per tick and therefore idempotent.
    bool retry_unsafe = false;
    RetryPolicy retry;
};

/// One attempt's outcome, recorded whether it succeeded or not.
struct FetchAttempt {
    std::string code;      ///< stable error code; empty on success
    std::string error;     ///< human-readable detail
    int status = 0;        ///< HTTP status when a response completed
    /// Planned backoff before the next attempt (0 on the last attempt).
    /// Computed from the policy alone — deterministic per seed.
    long long backoff_ms = 0;
};

struct FetchResult {
    /// True when the HTTP exchange completed (any status); false on a
    /// transport or parse failure, described in `code` + `error`.
    bool ok = false;
    std::string code;   ///< stable error code of the final failure
    std::string error;
    HttpResponse response;
    std::vector<FetchAttempt> attempts;

    /// Deterministic one-line-per-attempt trace, e.g.
    ///   attempt 1: net.reset connect: Connection reset by peer; backoff 55ms
    ///   attempt 2: ok 200
    /// No wall-clock values: two same-seed runs against the same failure
    /// sequence render byte-identical traces.
    [[nodiscard]] std::string trace() const;
};

/// One blocking request with retries per `options.retry`. Opens a fresh
/// connection per attempt, sends the request with Connection: close,
/// reads until the response completes or EOF. Never blocks past the
/// overall deadline.
[[nodiscard]] FetchResult http_fetch(const FetchOptions& options);

}  // namespace servet::serve
