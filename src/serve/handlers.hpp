// Request routing for the profile service, kept free of sockets so the
// protocol is unit-testable: a parsed HttpRequest goes in, a Response
// (status + body + cache validators) comes out. The socket layer
// (serve/server.hpp) only serializes what this returns.
//
// Routes (docs/serve.md is the authoritative protocol description):
//   GET /v1/healthz                    liveness probe
//   GET /v1/stats                      JSON counters (requests, cache, store)
//   GET /v1/profile/<fp>               latest profile for the fingerprint
//   GET /v1/profile/<fp>/<opts>        exact (fingerprint, options) profile
//   PUT /v1/profile/<fp>/<opts>        upload (body = profile text)
//   PUT /v1/series/<fp>/<opts>/<tick>  one watch-series sample (idempotent)
//   GET /v1/series/<fp>/<opts>/<tick>  the stored sample
//
// GETs carry `ETag: "<opts>"`; a matching If-None-Match answers 304 with
// no body — the conditional-GET fleet machines poll with. A profile PUT
// with If-Match is a compare-and-swap on the fingerprint's HEAD: a
// stale precondition answers 412 (code store.cas) without writing.
//
// When the server holds a shared-secret token, every route except
// /v1/healthz requires `authorization: Bearer <token>` (compared in
// constant time); a miss answers 401 (code auth.token).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "serve/http.hpp"
#include "serve/store.hpp"

namespace servet::serve {

struct Response {
    int status = 200;
    std::string body;
    std::string content_type = "text/plain";
    std::string etag;  ///< raw token; quoted by the serializer when set
};

/// JSON problem body with a stable machine-readable code, mirroring the
/// stable error codes elsewhere in servet (platform.*, drift.*).
[[nodiscard]] Response error_response(int status, std::string_view code,
                                      std::string_view message);

class Handler {
  public:
    explicit Handler(ProfileStore& store, std::string token = {})
        : store_(store), token_(std::move(token)) {}

    /// Routes one request. Never throws; anything unroutable is a 4xx.
    [[nodiscard]] Response handle(const HttpRequest& request);

    /// The /v1/stats payload (also reachable directly, e.g. for the
    /// shutdown summary line).
    [[nodiscard]] std::string stats_json() const;

  private:
    [[nodiscard]] bool authorized(const HttpRequest& request) const;

    ProfileStore& store_;
    /// Shared-secret auth token; empty = open (loopback trust model).
    std::string token_;
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> gets_{0};
    std::atomic<std::uint64_t> puts_{0};
    std::atomic<std::uint64_t> not_modified_{0};
    std::atomic<std::uint64_t> not_found_{0};
    std::atomic<std::uint64_t> client_errors_{0};
    std::atomic<std::uint64_t> auth_failures_{0};
    std::atomic<std::uint64_t> cas_conflicts_{0};
    std::atomic<std::uint64_t> samples_{0};
};

}  // namespace servet::serve
