// Request routing for the profile service, kept free of sockets so the
// protocol is unit-testable: a parsed HttpRequest goes in, a Response
// (status + body + cache validators) comes out. The socket layer
// (serve/server.hpp) only serializes what this returns.
//
// Routes (docs/serve.md is the authoritative protocol description):
//   GET /v1/healthz                    liveness probe
//   GET /v1/stats                      JSON counters (requests, cache, store)
//   GET /v1/profile/<fp>               latest profile for the fingerprint
//   GET /v1/profile/<fp>/<opts>        exact (fingerprint, options) profile
//   PUT /v1/profile/<fp>/<opts>        upload (body = profile text)
//
// GETs carry `ETag: "<opts>"`; a matching If-None-Match answers 304 with
// no body — the conditional-GET fleet machines poll with.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/http.hpp"
#include "serve/store.hpp"

namespace servet::serve {

struct Response {
    int status = 200;
    std::string body;
    std::string content_type = "text/plain";
    std::string etag;  ///< raw token; quoted by the serializer when set
};

/// JSON problem body with a stable machine-readable code, mirroring the
/// stable error codes elsewhere in servet (platform.*, drift.*).
[[nodiscard]] Response error_response(int status, std::string_view code,
                                      std::string_view message);

class Handler {
  public:
    explicit Handler(ProfileStore& store) : store_(store) {}

    /// Routes one request. Never throws; anything unroutable is a 4xx.
    [[nodiscard]] Response handle(const HttpRequest& request);

    /// The /v1/stats payload (also reachable directly, e.g. for the
    /// shutdown summary line).
    [[nodiscard]] std::string stats_json() const;

  private:
    ProfileStore& store_;
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> gets_{0};
    std::atomic<std::uint64_t> puts_{0};
    std::atomic<std::uint64_t> not_modified_{0};
    std::atomic<std::uint64_t> not_found_{0};
    std::atomic<std::uint64_t> client_errors_{0};
};

}  // namespace servet::serve
