#include "serve/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "base/rng.hpp"
#include "serve/http.hpp"

namespace servet::serve {

namespace {

constexpr std::size_t kMaxRelayBytes = 4 * 1024 * 1024;

void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

void set_recv_timeout(int fd, int milliseconds) {
    timeval tv{};
    tv.tv_sec = milliseconds / 1000;
    tv.tv_usec = (milliseconds % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

}  // namespace

ChaosProxy::ChaosProxy(std::uint16_t upstream_port, FaultPlan plan)
    : plan_(plan), upstream_port_(upstream_port) {}

ChaosProxy::~ChaosProxy() { stop(); }

const char* ChaosProxy::fault_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::None: return "none";
        case FaultKind::Drop: return "drop";
        case FaultKind::Delay: return "delay";
        case FaultKind::Reset: return "reset";
        case FaultKind::Truncate: return "truncate";
        case FaultKind::Trickle: return "trickle";
    }
    return "unknown";
}

ChaosProxy::FaultKind ChaosProxy::fault_for(std::uint64_t index) const {
    // One decision per connection, keyed on (plan seed, accept index):
    // the mix plus splitmix seeding inside Rng decorrelates consecutive
    // indices, and the fixed evaluation order makes the draw stable
    // across platforms.
    Rng rng(plan_.seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x1d8af4a31ULL));
    const double u = rng.next_double();
    double edge = plan_.conn_drop_probability;
    if (u < edge) return FaultKind::Drop;
    edge += plan_.conn_delay_probability;
    if (u < edge) return FaultKind::Delay;
    edge += plan_.conn_reset_probability;
    if (u < edge) return FaultKind::Reset;
    edge += plan_.conn_truncate_probability;
    if (u < edge) return FaultKind::Truncate;
    edge += plan_.conn_trickle_probability;
    if (u < edge) return FaultKind::Trickle;
    return FaultKind::None;
}

std::vector<ChaosProxy::FaultKind> ChaosProxy::injected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_;
}

bool ChaosProxy::start(std::string* error) {
    const auto fail = [&](const char* what) {
        if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
        close_fd(listen_fd_);
        return false;
    };
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        return fail("bind");
    if (::listen(listen_fd_, 64) != 0) return fail("listen");
    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0)
        return fail("getsockname");
    port_ = ntohs(bound.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
    started_ = true;
    return true;
}

void ChaosProxy::stop() {
    if (!started_) return;
    stopping_.store(true, std::memory_order_release);
    accept_thread_.join();
    close_fd(listen_fd_);
    std::vector<std::thread> relays;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        relays.swap(relays_);
    }
    for (std::thread& relay : relays) relay.join();
    started_ = false;
}

void ChaosProxy::accept_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd waiter{listen_fd_, POLLIN, 0};
        const int rc = ::poll(&waiter, 1, 100);
        if (rc <= 0) continue;
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) continue;
        FaultKind fault = FaultKind::None;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            fault = fault_for(next_index_++);
            injected_.push_back(fault);
        }
        std::lock_guard<std::mutex> lock(mutex_);
        relays_.emplace_back([this, fd, fault] { relay(fd, fault); });
    }
}

void ChaosProxy::relay(int client_fd, FaultKind fault) {
    int client = client_fd;
    const int one = 1;
    (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_recv_timeout(client, 200);

    // Drop never talks upstream: it drains the client's request, then
    // closes without a single response byte. Draining first matters for
    // determinism — closing with unread request bytes in the socket
    // would answer the client with an RST (net.reset) or a FIN
    // (net.closed) depending on timing; a drained socket always FINs.
    int upstream = -1;
    bool alive = fault != FaultKind::Drop;
    if (alive) {
        upstream = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (upstream < 0) {
            close_fd(client);
            return;
        }
        (void)::setsockopt(upstream, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        set_recv_timeout(upstream, 200);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(upstream_port_);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        alive = ::connect(upstream, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    }

    // Forward the client's request upstream until one complete request
    // has crossed (the clients here speak Connection: close — one
    // request per connection).
    HttpParser watcher;
    char buf[16 * 1024];
    std::size_t relayed = 0;
    const auto give_up_at =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while ((alive || fault == FaultKind::Drop) && !watcher.has_request() &&
           watcher.state() != HttpParser::State::Error) {
        if (stopping_.load(std::memory_order_acquire) ||
            std::chrono::steady_clock::now() > give_up_at)
            break;
        const ssize_t n = ::recv(client, buf, sizeof buf, 0);
        if (n > 0) {
            relayed += static_cast<std::size_t>(n);
            if (relayed > kMaxRelayBytes) break;
            const std::string_view bytes(buf, static_cast<std::size_t>(n));
            (void)watcher.feed(bytes);
            if (alive && !send_all(upstream, bytes)) alive = false;
            continue;
        }
        if (n == 0) break;
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        break;
    }

    // Collect the full upstream response (the server closes after it —
    // Connection: close), then deliver it through the fault.
    std::string response;
    while (alive && watcher.has_request()) {
        if (stopping_.load(std::memory_order_acquire) ||
            std::chrono::steady_clock::now() > give_up_at)
            break;
        const ssize_t n = ::recv(upstream, buf, sizeof buf, 0);
        if (n > 0) {
            response.append(buf, static_cast<std::size_t>(n));
            if (response.size() > kMaxRelayBytes) break;
            continue;
        }
        if (n == 0) break;
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        break;
    }

    const auto interruptible_sleep = [this](double seconds) {
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(seconds));
        while (!stopping_.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < until)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    };

    switch (fault) {
        case FaultKind::None:
        case FaultKind::Drop:  // request drained, response empty: clean FIN
            (void)send_all(client, response);
            break;
        case FaultKind::Delay:
            interruptible_sleep(plan_.conn_delay_seconds);
            (void)send_all(client, response);
            break;
        case FaultKind::Reset: {
            // Part of the head, then an RST: SO_LINGER{1,0} turns close()
            // into an abortive reset.
            (void)send_all(client, std::string_view(response).substr(
                                       0, std::min<std::size_t>(24, response.size())));
            linger hard{1, 0};
            (void)::setsockopt(client, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
            break;
        }
        case FaultKind::Truncate: {
            // Everything but the tail, then a clean FIN: the client's
            // parser sees a Content-Length body cut short.
            const std::size_t keep =
                response.size() > 8 ? response.size() - 4 : std::size_t{0};
            (void)send_all(client, std::string_view(response).substr(0, keep));
            break;
        }
        case FaultKind::Trickle:
            // One byte at a time: each byte lands inside the client's
            // per-operation budget, so only an overall deadline saves it.
            for (std::size_t i = 0; i < response.size(); ++i) {
                if (stopping_.load(std::memory_order_acquire)) break;
                if (!send_all(client, std::string_view(response).substr(i, 1))) break;
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            break;
    }
    close_fd(upstream);
    close_fd(client);
}

}  // namespace servet::serve
