// Deterministic in-process transport chaos for serve tests — the TCP
// counterpart of PR 3's FlakyPlatform. A ChaosProxy sits between a
// client and a real ServeServer on the loopback, relays each
// connection's request upstream, and injects exactly one fault decision
// per accepted connection, drawn from an Rng seeded by the FaultPlan's
// seed mixed with the connection index. Clients connect sequentially, so
// the fault sequence a retrying client sees is a pure function of the
// plan: same seed, same drops/resets/truncations, byte-identical retry
// traces (the acceptance bar for the chaos matrix).
//
// Fault kinds (FaultPlan's conn_* family, decided in this fixed order):
//   Drop      accept, drain the request, then close without answering —
//             the client deterministically sees EOF before any response
//             byte (net.closed).
//   Delay     stall conn_delay_seconds before relaying the response —
//             models a briefly unresponsive server (times the client's
//             per-operation budget).
//   Reset     relay part of the response, then RST (SO_LINGER 0) — the
//             client sees ECONNRESET mid-body.
//   Truncate  relay the response minus its tail, then clean FIN — the
//             client's parser sees a short Content-Length body.
//   Trickle   relay the response one byte at a time with a small pause —
//             defeats per-operation timeouts; only the client's overall
//             deadline bounds it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_plan.hpp"

namespace servet::serve {

class ChaosProxy {
  public:
    enum class FaultKind { None, Drop, Delay, Reset, Truncate, Trickle };

    /// Forwards to `upstream_port` on the loopback, injecting per `plan`.
    ChaosProxy(std::uint16_t upstream_port, FaultPlan plan);
    ~ChaosProxy();

    ChaosProxy(const ChaosProxy&) = delete;
    ChaosProxy& operator=(const ChaosProxy&) = delete;

    /// Binds an ephemeral loopback port and spawns the accept loop.
    [[nodiscard]] bool start(std::string* error);
    /// Stops accepting and joins every relay thread. Idempotent.
    void stop();

    /// The proxy's bound port — point the client here.
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// The fault decided for connection `index` (0-based accept order).
    /// Pure function of the plan — callable before any connection
    /// arrives, so tests can predict the failure sequence.
    [[nodiscard]] FaultKind fault_for(std::uint64_t index) const;

    /// Faults actually injected so far, in accept order.
    [[nodiscard]] std::vector<FaultKind> injected() const;

    [[nodiscard]] static const char* fault_name(FaultKind kind);

  private:
    void accept_loop();
    void relay(int client_fd, FaultKind fault);

    FaultPlan plan_;
    std::uint16_t upstream_port_ = 0;
    std::uint16_t port_ = 0;
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::thread accept_thread_;

    mutable std::mutex mutex_;
    std::vector<std::thread> relays_;
    std::vector<FaultKind> injected_;
    std::uint64_t next_index_ = 0;
};

}  // namespace servet::serve
