#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "base/fs.hpp"

namespace servet::serve {

namespace {
/// EINTR-proof close; the fds here are sockets, retrying close on EINTR
/// would be wrong (Linux closes the fd regardless), so just call once.
void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

/// Width of one timer-wheel slot. Fine enough that sub-second idle
/// timeouts (tests) reap promptly; coarse enough that the wheel for the
/// default 30s timeout stays small.
constexpr std::int64_t kWheelSlotMs = 100;
}  // namespace

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)),
      store_(options_.store_dir, options_.cache_entries),
      handler_(store_, options_.token) {}

ServeServer::~ServeServer() {
    if (started_ && !joined_) {
        request_stop();
        join();
    }
    close_fd(listen_fd_);
    close_fd(epoll_fd_);
    close_fd(wake_fd_);
}

bool ServeServer::start(std::string* error) {
    const auto fail = [&](const std::string& what) {
        if (error != nullptr) *error = what + ": " + std::strerror(errno);
        close_fd(listen_fd_);
        close_fd(epoll_fd_);
        close_fd(wake_fd_);
        return false;
    };

    if (!create_directories(options_.store_dir)) {
        if (error != nullptr)
            *error = "cannot create store directory " + options_.store_dir;
        return false;
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
        if (error != nullptr) *error = "invalid bind address " + options_.bind_address;
        close_fd(listen_fd_);
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        return fail("bind " + options_.bind_address + ":" + std::to_string(options_.port));
    if (::listen(listen_fd_, 512) != 0) return fail("listen");

    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0)
        return fail("getsockname");
    port_ = ntohs(bound.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return fail("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return fail("eventfd");

    epoll_event accept_event{};
    accept_event.events = EPOLLIN;
    accept_event.data.ptr = nullptr;  // nullptr = the listener
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &accept_event) != 0)
        return fail("epoll_ctl(listen)");
    epoll_event wake_event{};
    wake_event.events = EPOLLIN;
    wake_event.data.ptr = &wake_fd_;  // sentinel: the wake eventfd
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_event) != 0)
        return fail("epoll_ctl(wake)");

    if (options_.idle_timeout_seconds > 0) {
        const auto slots = static_cast<std::size_t>(
            std::ceil(options_.idle_timeout_seconds * 1000.0 /
                      static_cast<double>(kWheelSlotMs))) + 2;
        wheel_.assign(slots, {});
        wheel_epoch_ = Clock::now();
        wheel_cursor_ = 0;
    }
    {
        const Response shed =
            error_response(503, "server.capacity", "connection limit reached");
        shed_response_ = render_response(shed.status, shed.content_type, shed.body,
                                         /*etag=*/{}, /*close=*/true,
                                         "retry-after: 1\r\n");
    }

    const int threads = options_.threads < 1 ? 1 : options_.threads;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
    io_thread_ = std::thread([this] { io_loop(); });
    started_ = true;
    return true;
}

void ServeServer::request_stop() {
    // Only async-signal-safe calls: the SIGTERM handler runs this.
    stopping_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    if (wake_fd_ >= 0) {
        const ssize_t n = ::write(wake_fd_, &one, sizeof one);
        (void)n;
    }
}

void ServeServer::join() {
    if (!started_ || joined_) return;
    io_thread_.join();
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        workers_stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    // Whatever connections survived (idle keep-alives, half-parsed
    // requests) are torn down now; the workers have drained their queue.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (Connection* conn : conns_) {
        close_fd(conn->fd);
        delete conn;
    }
    conns_.clear();
    joined_ = true;
}

void ServeServer::enqueue(Connection* conn) {
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(conn);
    }
    queue_cv_.notify_one();
}

void ServeServer::close_connection(Connection* conn) {
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns_.erase(conn);
        wheel_remove_locked(conn);
    }
    // The fd leaves the epoll set automatically on close.
    close_fd(conn->fd);
    delete conn;
}

std::size_t ServeServer::wheel_slot_for(Clock::time_point when) const {
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(when - wheel_epoch_)
            .count();
    return static_cast<std::size_t>((ms < 0 ? 0 : ms) / kWheelSlotMs) % wheel_.size();
}

void ServeServer::wheel_place_locked(Connection* conn, Clock::time_point expiry) {
    if (wheel_.empty()) return;
    wheel_remove_locked(conn);
    conn->wheel_slot = wheel_slot_for(expiry);
    wheel_[conn->wheel_slot].insert(conn);
}

void ServeServer::wheel_remove_locked(Connection* conn) {
    if (conn->wheel_slot == kNoSlot || wheel_.empty()) return;
    wheel_[conn->wheel_slot].erase(conn);
    conn->wheel_slot = kNoSlot;
}

void ServeServer::touch_locked(Connection* conn, Clock::time_point now) {
    conn->last_activity = now;
    if (!wheel_.empty())
        wheel_place_locked(
            conn, now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                options_.idle_timeout_seconds)));
}

void ServeServer::reap_idle() {
    if (wheel_.empty()) return;
    const Clock::time_point now = Clock::now();
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - wheel_epoch_)
            .count();
    const std::uint64_t target =
        static_cast<std::uint64_t>(elapsed_ms < 0 ? 0 : elapsed_ms / kWheelSlotMs);
    const auto idle = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.idle_timeout_seconds));

    std::lock_guard<std::mutex> lock(conns_mutex_);
    // After a long stall (debugger, suspended VM) one revolution covers
    // every slot — no need to replay older ticks.
    if (target > wheel_cursor_ + wheel_.size())
        wheel_cursor_ = target - wheel_.size();
    while (wheel_cursor_ < target) {
        ++wheel_cursor_;
        auto due = std::move(wheel_[wheel_cursor_ % wheel_.size()]);
        wheel_[wheel_cursor_ % wheel_.size()].clear();
        for (Connection* conn : due) {
            conn->wheel_slot = kNoSlot;
            // Lazy re-hash: a connection that was active (or is owned by
            // a worker right now) just moves to the slot its real idle
            // budget expires in. Only the truly idle are reaped.
            if (conn->busy) {
                wheel_place_locked(conn, now + idle);
            } else if (conn->last_activity + idle > now) {
                wheel_place_locked(conn, conn->last_activity + idle);
            } else {
                conns_.erase(conn);
                close_fd(conn->fd);
                delete conn;
            }
        }
    }
}

bool ServeServer::rearm(Connection* conn) {
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    event.data.ptr = conn;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event) == 0;
}

void ServeServer::release_connection(Connection* conn) {
    bool ok = false;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conn->busy = false;
        touch_locked(conn, Clock::now());
        ok = rearm(conn);
    }
    if (!ok) close_connection(conn);
}

void ServeServer::io_loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    // With reaping enabled the wait must tick even when no bytes arrive —
    // that tick is what advances the timer wheel past a slow-loris.
    const int wait_ms = wheel_.empty() ? -1 : static_cast<int>(kWheelSlotMs);
    while (true) {
        const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, wait_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            if (events[i].data.ptr == &wake_fd_) {
                std::uint64_t drained = 0;
                const ssize_t r = ::read(wake_fd_, &drained, sizeof drained);
                (void)r;
                continue;  // stop flag checked below, after this batch
            }
            if (events[i].data.ptr == nullptr) {
                // The listener: accept until EAGAIN.
                while (true) {
                    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                             SOCK_NONBLOCK | SOCK_CLOEXEC);
                    if (fd < 0) break;
                    bool at_capacity = false;
                    {
                        std::lock_guard<std::mutex> lock(conns_mutex_);
                        at_capacity = conns_.size() >= options_.max_connections;
                    }
                    if (at_capacity || stopping_.load(std::memory_order_acquire)) {
                        // Shed, don't ghost: a one-shot 503 + Retry-After
                        // tells a retrying client when to come back. Best
                        // effort — the fd is non-blocking and a full send
                        // buffer is not worth waiting on.
                        if (at_capacity)
                            (void)::send(fd, shed_response_.data(),
                                         shed_response_.size(), MSG_NOSIGNAL);
                        ::close(fd);
                        continue;
                    }
                    const int one = 1;
                    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
                    auto* conn = new Connection(options_.limits);
                    conn->fd = fd;
                    {
                        std::lock_guard<std::mutex> lock(conns_mutex_);
                        conns_.insert(conn);
                        touch_locked(conn, Clock::now());
                    }
                    epoll_event event{};
                    event.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
                    event.data.ptr = conn;
                    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0)
                        close_connection(conn);
                }
                continue;
            }

            // A connection became readable (EPOLLONESHOT: it is ours alone
            // until re-armed). Read everything available, feed the parser,
            // and decide: worker (complete request or protocol error),
            // re-arm (clean but incomplete), or close (EOF, no work left).
            auto* conn = static_cast<Connection*>(events[i].data.ptr);
            {
                // Claimed: from here until release/close the reaper must
                // leave the connection alone, whatever its idle budget.
                std::lock_guard<std::mutex> lock(conns_mutex_);
                conn->busy = true;
            }
            char chunk[16 * 1024];
            bool io_dead = false;
            while (true) {
                const ssize_t got = ::recv(conn->fd, chunk, sizeof chunk, 0);
                if (got > 0) {
                    (void)conn->parser.feed(
                        std::string_view(chunk, static_cast<std::size_t>(got)));
                    if (conn->parser.state() == HttpParser::State::Error) break;
                    continue;
                }
                if (got == 0) {
                    conn->saw_eof = true;
                    break;
                }
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                if (errno == EINTR) continue;
                io_dead = true;
                break;
            }
            if ((events[i].events & (EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0)
                conn->saw_eof = true;

            if (io_dead) {
                close_connection(conn);
            } else if (conn->parser.has_request() ||
                       conn->parser.state() == HttpParser::State::Error) {
                enqueue(conn);  // stays busy until the worker releases it
            } else if (conn->saw_eof) {
                close_connection(conn);  // peer gone, nothing to answer
            } else {
                release_connection(conn);
            }
        }
        reap_idle();
        if (stopping_.load(std::memory_order_acquire)) break;
    }
    // Stop accepting; established connections drain through the workers.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close_fd(listen_fd_);
}

void ServeServer::worker_loop() {
    while (true) {
        Connection* conn = nullptr;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // workers_stop_ and drained
            conn = queue_.front();
            queue_.pop_front();
        }
        if (serve_ready_requests(conn)) {
            release_connection(conn);
        } else {
            close_connection(conn);
        }
    }
}

bool ServeServer::send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    int stalls = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            stalls = 0;
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // A reader that stops draining for 30s is gone (or hostile);
            // a worker must not be pinned to it forever.
            if (++stalls > 30) return false;
            pollfd waiter{fd, POLLOUT, 0};
            (void)::poll(&waiter, 1, 1000);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

bool ServeServer::serve_ready_requests(Connection* conn) {
    while (conn->parser.has_request()) {
        const HttpRequest request = conn->parser.take_request();
        const Response response = handler_.handle(request);
        const bool close_after =
            !request.keep_alive ||
            (conn->saw_eof && !conn->parser.has_request() &&
             conn->parser.state() != HttpParser::State::Error);
        if (!send_all(conn->fd, render_response(response.status, response.content_type,
                                                response.body, response.etag,
                                                close_after)))
            return false;
        if (!request.keep_alive) return false;
    }
    if (conn->parser.state() == HttpParser::State::Error) {
        // One best-effort error response, then drop the connection — after
        // a framing error there is no trustworthy request boundary left.
        const Response response =
            error_response(conn->parser.error_status(), "http.malformed",
                           conn->parser.error_reason());
        (void)send_all(conn->fd, render_response(response.status, response.content_type,
                                                 response.body, /*etag=*/{},
                                                 /*close=*/true));
        return false;
    }
    return !conn->saw_eof;
}

}  // namespace servet::serve
