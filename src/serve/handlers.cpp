#include "serve/handlers.hpp"

#include <vector>

namespace servet::serve {

namespace {

constexpr const char* kProfileContentType = "text/x-servet-profile";

/// Splits a path into non-empty segments ("/v1/profile/a" -> v1,profile,a).
std::vector<std::string> segments_of(const std::string& path) {
    std::vector<std::string> segments;
    std::size_t pos = 1;  // path always starts with '/'
    while (pos <= path.size()) {
        const std::size_t slash = std::min(path.find('/', pos), path.size());
        if (slash > pos) segments.push_back(path.substr(pos, slash - pos));
        pos = slash + 1;
    }
    return segments;
}

/// Equality that touches every byte regardless of where the first
/// mismatch is, so response timing does not leak the token prefix.
bool constant_time_equals(const std::string& a, const std::string& b) {
    unsigned diff = a.size() == b.size() ? 0u : 1u;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        diff |= static_cast<unsigned>(static_cast<unsigned char>(a[i]) ^
                                      static_cast<unsigned char>(b[i]));
    return diff == 0;
}

std::string json_escape(const std::string& text) {
    std::string out;
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

}  // namespace

Response error_response(int status, std::string_view code, std::string_view message) {
    Response response;
    response.status = status;
    response.content_type = "application/json";
    response.body = "{\"error\": \"" + std::string(code) + "\", \"message\": \"" +
                    json_escape(std::string(message)) + "\"}\n";
    return response;
}

bool Handler::authorized(const HttpRequest& request) const {
    if (token_.empty()) return true;
    const std::string* header = request.header("authorization");
    if (header == nullptr) return false;
    return constant_time_equals(*header, "Bearer " + token_);
}

Response Handler::handle(const HttpRequest& request) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    const auto fail = [&](int status, std::string_view code, std::string_view message) {
        if (status >= 400 && status < 500)
            client_errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response(status, code, message);
    };

    if (request.method != "GET" && request.method != "PUT")
        return fail(405, "http.method", "only GET and PUT are served");

    const std::vector<std::string> segments = segments_of(request.path);
    if (segments.size() == 2 && segments[0] == "v1" && segments[1] == "healthz") {
        if (request.method != "GET") return fail(405, "http.method", "healthz is GET-only");
        Response response;
        response.body = "ok\n";
        return response;
    }
    // Everything past the liveness probe is token-gated when the server
    // holds one; healthz stays open so load balancers and the watch
    // push path can probe reachability without the secret.
    if (!authorized(request)) {
        auth_failures_.fetch_add(1, std::memory_order_relaxed);
        return fail(401, "auth.token", "missing or invalid authorization token");
    }

    if (segments.size() == 2 && segments[0] == "v1" && segments[1] == "stats") {
        if (request.method != "GET") return fail(405, "http.method", "stats is GET-only");
        Response response;
        response.content_type = "application/json";
        response.body = stats_json();
        return response;
    }

    if (segments.size() == 5 && segments[0] == "v1" && segments[1] == "series") {
        const std::string& fingerprint = segments[2];
        const std::string& opts = segments[3];
        const std::string& tick = segments[4];
        if (!ProfileStore::valid_key(fingerprint) || !ProfileStore::valid_key(opts))
            return fail(400, "store.key",
                        "series keys must be 16 lowercase hex digits");
        if (!ProfileStore::valid_tick(tick))
            return fail(400, "store.key",
                        "tick must be 1-10 decimal digits, got '" + tick + "'");
        if (request.method == "PUT") {
            if (request.header("content-length") == nullptr)
                return fail(411, "http.length", "PUT requires content-length");
            switch (store_.put_sample(fingerprint, opts, tick, request.body)) {
                case ProfileStore::PutStatus::Stored: {
                    samples_.fetch_add(1, std::memory_order_relaxed);
                    Response response;
                    response.status = 201;
                    response.content_type = "application/json";
                    response.body = "{\"stored\": true, \"tick\": " + tick + "}\n";
                    return response;
                }
                case ProfileStore::PutStatus::InvalidKey:
                    return fail(400, "store.key", "invalid series key");
                case ProfileStore::PutStatus::InvalidProfile:
                    return fail(400, "sample.parse",
                                "body is not a watch series sample");
                case ProfileStore::PutStatus::CasMismatch:
                case ProfileStore::PutStatus::IoError:
                    return fail(500, "store.io", "could not persist the sample");
            }
            return fail(500, "store.io", "unreachable put status");
        }
        const auto body = store_.get_sample(fingerprint, opts, tick);
        if (!body) {
            not_found_.fetch_add(1, std::memory_order_relaxed);
            return fail(404, "sample.unknown",
                        "no sample stored for " + fingerprint + "/" + opts + "/" + tick);
        }
        gets_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.body = *body;
        return response;
    }

    if (segments.size() < 3 || segments.size() > 4 || segments[0] != "v1" ||
        segments[1] != "profile")
        return fail(404, "http.path", "unknown resource " + request.path);

    const std::string& fingerprint = segments[2];
    if (!ProfileStore::valid_key(fingerprint))
        return fail(400, "store.key",
                    "fingerprint must be 16 lowercase hex digits, got '" + fingerprint +
                        "'");

    if (request.method == "PUT") {
        if (segments.size() != 4)
            return fail(400, "store.key", "PUT needs /v1/profile/<fp>/<options>");
        if (request.header("content-length") == nullptr)
            return fail(411, "http.length", "PUT requires content-length");
        switch (store_.put(fingerprint, segments[3], request.body,
                           request.header("if-match"))) {
            case ProfileStore::PutStatus::Stored: {
                puts_.fetch_add(1, std::memory_order_relaxed);
                Response response;
                response.status = 201;
                response.content_type = "application/json";
                response.etag = segments[3];
                response.body = "{\"stored\": true, \"fingerprint\": \"" + fingerprint +
                                "\", \"options\": \"" + segments[3] + "\"}\n";
                return response;
            }
            case ProfileStore::PutStatus::InvalidKey:
                return fail(400, "store.key",
                            "options hash must be 16 lowercase hex digits");
            case ProfileStore::PutStatus::InvalidProfile:
                return fail(400, "profile.parse",
                            "body is not a parseable servet profile");
            case ProfileStore::PutStatus::IoError:
                return fail(500, "store.io", "could not persist the profile");
            case ProfileStore::PutStatus::CasMismatch:
                cas_conflicts_.fetch_add(1, std::memory_order_relaxed);
                return fail(412, "store.cas",
                            "If-Match precondition failed: HEAD for " + fingerprint +
                                " is not what the request named");
        }
        return fail(500, "store.io", "unreachable put status");
    }

    // GET /v1/profile/<fp>[/<opts>]
    std::string options;
    if (segments.size() == 4) {
        options = segments[3];
        if (!ProfileStore::valid_key(options))
            return fail(400, "store.key",
                        "options hash must be 16 lowercase hex digits, got '" + options +
                            "'");
    } else {
        const auto latest = store_.head(fingerprint);
        if (!latest) {
            not_found_.fetch_add(1, std::memory_order_relaxed);
            return fail(404, "profile.unknown",
                        "no profile stored for fingerprint " + fingerprint);
        }
        options = *latest;
    }

    // The options hash is the validator: a fleet client that already holds
    // this exact profile revalidates for the cost of the headers alone.
    if (const std::string* if_none_match = request.header("if-none-match")) {
        if (etag_list_matches(*if_none_match, options)) {
            not_modified_.fetch_add(1, std::memory_order_relaxed);
            Response response;
            response.status = 304;
            response.etag = options;
            return response;
        }
    }

    const auto body = store_.get(fingerprint, options);
    if (!body) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        return fail(404, "profile.unknown",
                    "no profile stored for " + fingerprint + "/" + options);
    }
    gets_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.content_type = kProfileContentType;
    response.etag = options;
    response.body = *body;
    return response;
}

std::string Handler::stats_json() const {
    const StoreStats store = store_.stats();
    std::string out = "{\n";
    const auto field = [&out](const char* name, std::uint64_t value, bool last = false) {
        out += "  \"";
        out += name;
        out += "\": " + std::to_string(value) + (last ? "\n" : ",\n");
    };
    field("requests", requests_.load(std::memory_order_relaxed));
    field("gets", gets_.load(std::memory_order_relaxed));
    field("puts", puts_.load(std::memory_order_relaxed));
    field("not_modified", not_modified_.load(std::memory_order_relaxed));
    field("not_found", not_found_.load(std::memory_order_relaxed));
    field("client_errors", client_errors_.load(std::memory_order_relaxed));
    field("auth_failures", auth_failures_.load(std::memory_order_relaxed));
    field("cas_conflicts", cas_conflicts_.load(std::memory_order_relaxed));
    field("samples", samples_.load(std::memory_order_relaxed));
    field("cache_hits", store.cache_hits);
    field("cache_misses", store.cache_misses);
    field("cache_evictions", store.evictions);
    field("stored_profiles", store.puts, /*last=*/true);
    out += "}\n";
    return out;
}

}  // namespace servet::serve
