#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace servet::serve {

namespace {

FetchResult fail(std::string error) {
    FetchResult result;
    result.error = std::move(error);
    return result;
}

FetchResult fail_errno(const char* what) {
    return fail(std::string(what) + ": " + std::strerror(errno));
}

/// RAII socket so every error path closes.
struct Socket {
    int fd = -1;
    ~Socket() {
        if (fd >= 0) ::close(fd);
    }
};

}  // namespace

FetchResult http_fetch(const FetchOptions& options) {
    if (options.port <= 0 || options.port > 65535)
        return fail("port out of range: " + std::to_string(options.port));
    if (options.path.empty() || options.path.front() != '/')
        return fail("request path must be absolute, got '" + options.path + "'");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
        return fail("host must be a numeric IPv4 address, got '" + options.host + "'");

    Socket sock;
    sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (sock.fd < 0) return fail_errno("socket");

    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options.timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (options.timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    (void)::setsockopt(sock.fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(sock.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        return fail_errno("connect");

    std::string request = "GET " + options.path + " HTTP/1.1\r\n";
    request += "host: " + options.host + ":" + std::to_string(options.port) + "\r\n";
    if (!options.etag.empty()) request += "if-none-match: \"" + options.etag + "\"\r\n";
    request += "connection: close\r\n\r\n";

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(sock.fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return fail_errno("send");
        sent += static_cast<std::size_t>(n);
    }

    HttpResponseParser parser;
    char buf[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(sock.fd, buf, sizeof buf, 0);
        if (n < 0) return fail_errno("recv");
        if (n == 0) {
            (void)parser.finish_eof();
            break;
        }
        if (parser.feed(std::string_view(buf, static_cast<std::size_t>(n))) !=
            HttpResponseParser::State::NeedMore)
            break;
    }
    if (parser.state() != HttpResponseParser::State::Complete)
        return fail("malformed response: " + (parser.error_reason().empty()
                                                  ? std::string("truncated")
                                                  : parser.error_reason()));

    FetchResult result;
    result.ok = true;
    result.response = parser.response();
    return result;
}

}  // namespace servet::serve
