#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "base/rng.hpp"

namespace servet::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// RAII socket so every error path closes.
struct Socket {
    int fd = -1;
    ~Socket() {
        if (fd >= 0) ::close(fd);
    }
};

/// "%g"-style rendering so "timed out after 2s" and "after 0.25s" both
/// read naturally and deterministically.
std::string format_seconds(double seconds) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", seconds);
    return buf;
}

struct AttemptError {
    std::string code;
    std::string error;
};

AttemptError op_timeout(const char* op, double seconds) {
    return {"net.timeout",
            std::string(op) + " timed out after " + format_seconds(seconds) + "s"};
}

AttemptError deadline_exceeded(const char* op, double seconds) {
    return {"net.deadline", std::string("overall deadline of ") +
                                format_seconds(seconds) + "s exceeded during " + op};
}

AttemptError from_errno(const char* op, int err) {
    const std::string detail = std::string(op) + ": " + std::strerror(err);
    if (err == ECONNRESET || err == EPIPE) return {"net.reset", detail};
    if (err == ECONNREFUSED || err == EHOSTUNREACH || err == ENETUNREACH ||
        err == ETIMEDOUT)
        return {"net.connect", detail};
    return {"net.io", detail};
}

enum class Wait { Ready, OpTimeout, Deadline };

/// Polls `fd` for `events`, bounded by both the per-operation timeout
/// (an inactivity budget starting now) and the overall deadline.
/// EINTR-proof: an interrupted poll resumes with recomputed remaining
/// time, so a signal can delay but never abort an exchange.
Wait wait_io(int fd, short events, double timeout_seconds, Clock::time_point deadline) {
    const Clock::time_point op_end =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_seconds));
    for (;;) {
        const Clock::time_point now = Clock::now();
        if (now >= deadline) return Wait::Deadline;
        if (now >= op_end) return Wait::OpTimeout;
        const Clock::time_point end = std::min(op_end, deadline);
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(end - now).count();
        pollfd waiter{fd, events, 0};
        const int rc = ::poll(&waiter, 1, static_cast<int>(std::min<long long>(
                                              left + 1, 60'000)));
        if (rc > 0) return Wait::Ready;
        if (rc < 0 && errno != EINTR && errno != EAGAIN) return Wait::OpTimeout;
    }
}

std::string render_request(const FetchOptions& options) {
    std::string request = options.method + " " + options.path + " HTTP/1.1\r\n";
    request += "host: " + options.host + ":" + std::to_string(options.port) + "\r\n";
    if (!options.etag.empty() && options.method == "GET")
        request += "if-none-match: \"" + options.etag + "\"\r\n";
    if (!options.if_match.empty()) {
        if (options.if_match == "*")
            request += "if-match: *\r\n";
        else
            request += "if-match: \"" + options.if_match + "\"\r\n";
    }
    if (!options.token.empty())
        request += "authorization: Bearer " + options.token + "\r\n";
    if (options.method != "GET" || !options.body.empty()) {
        if (!options.content_type.empty())
            request += "content-type: " + options.content_type + "\r\n";
        request += "content-length: " + std::to_string(options.body.size()) + "\r\n";
    }
    request += "connection: close\r\n\r\n";
    request += options.body;
    return request;
}

/// One connection, one request, one response. Returns the error, or
/// nullopt with `*out` filled on a completed exchange (any status).
std::optional<AttemptError> run_attempt(const FetchOptions& options,
                                        const std::string& request,
                                        Clock::time_point deadline,
                                        double deadline_seconds, HttpResponse* out) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
        return AttemptError{"net.option",
                            "host must be a numeric IPv4 address, got '" + options.host +
                                "'"};

    Socket sock;
    sock.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (sock.fd < 0) return from_errno("socket", errno);

    // Non-blocking connect + poll: SO_RCVTIMEO/SNDTIMEO never covered
    // connect, so an unroutable host used to block for the kernel default
    // (minutes). Now the same per-operation budget bounds it.
    const int rc = ::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0) {
        if (errno != EINPROGRESS && errno != EINTR)
            return from_errno("connect", errno);
        switch (wait_io(sock.fd, POLLOUT, options.timeout_seconds, deadline)) {
            case Wait::OpTimeout:
                return op_timeout("connect", options.timeout_seconds);
            case Wait::Deadline:
                return deadline_exceeded("connect", deadline_seconds);
            case Wait::Ready: break;
        }
        int soerr = 0;
        socklen_t len = sizeof soerr;
        if (::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0)
            return from_errno("getsockopt", errno);
        if (soerr != 0) return from_errno("connect", soerr);
    }

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(sock.fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            switch (wait_io(sock.fd, POLLOUT, options.timeout_seconds, deadline)) {
                case Wait::OpTimeout:
                    return op_timeout("send", options.timeout_seconds);
                case Wait::Deadline:
                    return deadline_exceeded("send", deadline_seconds);
                case Wait::Ready: break;
            }
            continue;
        }
        return from_errno("send", errno);
    }

    HttpResponseParser parser;
    char buf[16 * 1024];
    bool saw_eof = false;
    for (;;) {
        const ssize_t n = ::recv(sock.fd, buf, sizeof buf, 0);
        if (n > 0) {
            if (parser.feed(std::string_view(buf, static_cast<std::size_t>(n))) !=
                HttpResponseParser::State::NeedMore)
                break;
            continue;
        }
        if (n == 0) {
            saw_eof = true;
            (void)parser.finish_eof();
            break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            switch (wait_io(sock.fd, POLLIN, options.timeout_seconds, deadline)) {
                case Wait::OpTimeout:
                    return op_timeout("recv", options.timeout_seconds);
                case Wait::Deadline:
                    return deadline_exceeded("recv", deadline_seconds);
                case Wait::Ready: break;
            }
            continue;
        }
        return from_errno("recv", errno);
    }

    if (parser.state() != HttpResponseParser::State::Complete) {
        const std::string reason = parser.error_reason().empty()
                                       ? std::string("truncated")
                                       : parser.error_reason();
        // A peer that closed before the declared body completed is a
        // transport symptom (retryable); grammar violations are not.
        if (saw_eof) return AttemptError{"net.closed", reason};
        return AttemptError{"http.malformed", "malformed response: " + reason};
    }
    *out = parser.response();
    return std::nullopt;
}

bool retryable(const std::string& code) {
    return code == "net.connect" || code == "net.timeout" || code == "net.reset" ||
           code == "net.closed" || code == "net.io";
}

/// Seconds from a Retry-After header (delta-seconds form only), or -1.
double parse_retry_after(const HttpResponse& response) {
    const std::string* value = response.header("retry-after");
    if (value == nullptr || value->empty()) return -1.0;
    double seconds = 0;
    const auto [end, ec] =
        std::from_chars(value->data(), value->data() + value->size(), seconds);
    if (ec != std::errc{} || end != value->data() + value->size() || seconds < 0)
        return -1.0;
    return seconds;
}

}  // namespace

std::string FetchResult::trace() const {
    std::string out;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
        const FetchAttempt& attempt = attempts[i];
        out += "attempt " + std::to_string(i + 1) + ": ";
        if (attempt.code.empty()) {
            out += "ok " + std::to_string(attempt.status);
        } else {
            out += attempt.code;
            if (attempt.status != 0) out += ' ' + std::to_string(attempt.status);
            if (!attempt.error.empty()) out += ' ' + attempt.error;
        }
        if (attempt.backoff_ms > 0)
            out += "; backoff " + std::to_string(attempt.backoff_ms) + "ms";
        out += '\n';
    }
    return out;
}

FetchResult http_fetch(const FetchOptions& options) {
    const auto fail = [](std::string code, std::string error) {
        FetchResult result;
        result.code = std::move(code);
        result.error = std::move(error);
        return result;
    };
    if (options.port <= 0 || options.port > 65535)
        return fail("net.option", "port out of range: " + std::to_string(options.port));
    if (options.path.empty() || options.path.front() != '/')
        return fail("net.option",
                    "request path must be absolute, got '" + options.path + "'");
    if (options.method.empty())
        return fail("net.option", "request method must be non-empty");
    if (!(options.timeout_seconds > 0))
        return fail("net.option", "timeout must be positive");

    const double deadline_seconds = options.deadline_seconds > 0
                                        ? options.deadline_seconds
                                        : 6.0 * options.timeout_seconds;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(deadline_seconds));
    const int max_attempts = options.retry.max_attempts < 1 ? 1 : options.retry.max_attempts;
    const bool may_retry = options.method == "GET" || options.retry_unsafe;
    const std::string request = render_request(options);

    Rng backoff_rng(options.retry.seed);
    FetchResult result;
    for (int attempt_index = 0; attempt_index < max_attempts; ++attempt_index) {
        if (attempt_index > 0 && Clock::now() >= deadline) {
            result.code = "net.deadline";
            result.error = "overall deadline of " + format_seconds(deadline_seconds) +
                           "s exceeded after " + std::to_string(attempt_index) +
                           " attempt(s)";
            return result;
        }
        HttpResponse response;
        const auto error =
            run_attempt(options, request, deadline, deadline_seconds, &response);
        FetchAttempt record;
        const bool last = attempt_index + 1 >= max_attempts;

        double retry_after = -1.0;
        bool retry_now = false;
        if (!error) {
            record.status = response.status;
            // A 503 is the server shedding load and naming its own retry
            // horizon — honor it like a transport failure when the
            // request is safe to repeat.
            if (response.status == 503 && may_retry && !last) {
                record.code = "http.unavailable";
                retry_after = parse_retry_after(response);
                retry_now = true;
            }
        } else {
            record.code = error->code;
            record.error = error->error;
            retry_now = may_retry && !last && retryable(error->code);
        }

        if (retry_now) {
            // Capped exponential backoff with deterministic seeded
            // jitter; the draw sequence depends only on the policy seed.
            double base = options.retry.backoff_initial_ms;
            for (int i = 0; i < attempt_index; ++i) base *= options.retry.backoff_multiplier;
            base = std::min(base, options.retry.backoff_cap_ms);
            double ms = base * backoff_rng.jitter(options.retry.jitter);
            if (retry_after > 0)
                ms = std::max(ms, std::min(retry_after * 1000.0,
                                           options.retry.backoff_cap_ms));
            record.backoff_ms = std::llround(std::max(0.0, ms));
            result.attempts.push_back(record);
            const Clock::time_point wake =
                Clock::now() + std::chrono::milliseconds(record.backoff_ms);
            std::this_thread::sleep_until(std::min(wake, deadline));
            continue;
        }

        result.attempts.push_back(record);
        if (!error) {
            result.ok = true;
            result.response = std::move(response);
        } else {
            result.code = error->code;
            result.error = error->error;
        }
        return result;
    }
    return result;  // unreachable: the loop always returns
}

}  // namespace servet::serve
