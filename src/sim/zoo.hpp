// The machine zoo: ground-truth models of the four systems the paper
// evaluates on (Section IV), plus a builder for synthetic machines used by
// the property tests. Cache geometries, sharing topologies, bus/cell
// structure and the OS core numbering quirks match the paper's
// descriptions; latency/bandwidth magnitudes are era-plausible values
// chosen so every figure reproduces the paper's *shape* (tiers, ratios,
// crossovers), not its absolute numbers.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace servet::sim::zoo {

/// 4 x Intel Xeon E7450 "Dunnington" hexacore, 2.40 GHz, 24 cores.
/// Individual 32KB L1; 3MB L2 shared by core pairs {i, i+12}; 12MB L3
/// shared by the 6 cores of a package {3p, 3p+1, 3p+2, 3p+12, 3p+13,
/// 3p+14} — the OS numbering the paper highlights in Fig. 8a. One front-
/// side bus: every pair contends equally for memory (Fig. 9a).
[[nodiscard]] MachineSpec dunnington();

/// Finis Terrae HP RX7640 node(s): 8 x Itanium2 Montvale dual-core per
/// node (16 cores), two cells of 8 cores, memory buses shared by pairs of
/// processors (4 cores per bus). All caches private (16KB L1 / 256KB L2 /
/// 9MB L3, 16KB pages). `nodes` > 1 adds InfiniBand-connected nodes for
/// the communication benchmarks (the paper uses 2 nodes / 32 cores).
[[nodiscard]] MachineSpec finis_terrae(int nodes = 1);

/// Intel Xeon 5060 "Dempsey" dualcore, 3.20 GHz: 16KB L1, private 2MB L2.
/// The physically-indexed L2 plus 4KB pages produce the miss-rate smear of
/// Fig. 2 that defeats naive peak detection.
[[nodiscard]] MachineSpec dempsey();

/// AMD Athlon 3200, 2 GHz unicore: 64KB L1, 512KB L2.
[[nodiscard]] MachineSpec athlon3200();

/// A post-paper control: Nehalem-style 2-socket node (8 cores) with
/// private 32KB L1 / 256KB L2, an 8MB L3 shared per socket, and
/// integrated per-socket memory controllers — the topology generation
/// that replaced front-side buses. Exercises the suite on a machine the
/// paper never saw: NUMA memory with markedly better scalability than
/// the FSB systems, and a three-tier communication hierarchy.
[[nodiscard]] MachineSpec nehalem2s();

/// All four paper machines, for sweep-style tests and benches.
[[nodiscard]] std::vector<MachineSpec> paper_machines();

// ---- cluster entries: multi-node machines over a sim::Topology ----

/// Bare cluster machine awaiting a topology: `nodes` x `cores_per_node`
/// plain nodes (private 32K/512K caches, one bus domain and one IntraNode
/// comm layer per node when multicore). The fixed cluster entries below
/// and the platform-file loader both build on it; the caller fills
/// MachineSpec::topology.
[[nodiscard]] MachineSpec cluster_node_machine(std::string name, int nodes, int cores_per_node,
                                               std::uint64_t seed);

/// Smallest interesting fat-tree cluster: arity-2, 2 switch levels (4
/// nodes), 2 cores per node — 8 ranks. Golden-pinned.
[[nodiscard]] MachineSpec fat_tree_small();

/// 4x4 torus of unicore nodes — 16 ranks, no intra-node layers at all:
/// every pair routes over the topology. Golden-pinned.
[[nodiscard]] MachineSpec torus4x4();

/// Arity-4 fat-tree cluster of 16-core nodes: `levels` switch levels give
/// 4^levels nodes (levels 3 -> 1024 ranks, levels 4 -> 4096 ranks — the
/// cluster-scale test sizes).
[[nodiscard]] MachineSpec fat_tree_cluster(int levels, int cores_per_node = 16);

/// Dragonfly cluster of 16-core nodes: groups x routers x nodes_per_router
/// nodes (10, 8, 8 -> 10240 ranks, the 10k-rank variant).
[[nodiscard]] MachineSpec dragonfly_cluster(int groups, int routers, int nodes_per_router,
                                            int cores_per_node = 16);

/// Parameters for synthetic test machines.
struct SyntheticOptions {
    int cores = 4;
    Bytes l1_size = 32 * KiB;
    int l1_assoc = 8;
    Bytes l2_size = 2 * MiB;
    int l2_assoc = 8;
    /// Cores per shared L2 instance (1 = private). Must divide `cores`.
    int l2_sharing = 1;
    Bytes page_size = 4 * KiB;
    PagePolicy page_policy = PagePolicy::Random;
    double jitter = 0.0;
    std::uint64_t seed = 42;
};

/// Two-level synthetic machine with a single memory bus; used by the
/// parameterized detection-accuracy tests.
[[nodiscard]] MachineSpec synthetic(const SyntheticOptions& options);

}  // namespace servet::sim::zoo
