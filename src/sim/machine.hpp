// Machine model: the ground-truth description of a simulated multicore
// cluster node (or small cluster). The Servet detection algorithms never
// read this — they see only measurements — but the simulator executes
// against it and the tests score detection output against it.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"
#include "sim/cache.hpp"
#include "sim/page_mapper.hpp"
#include "sim/prefetcher.hpp"
#include "sim/topology.hpp"

namespace servet::sim {

/// One cache level: geometry, access cost, and which cores share which
/// physical instance. `instances` partitions all cores; e.g. Dunnington's
/// L2 level has 12 instances of 2 cores each.
struct CacheLevelSpec {
    std::string name;  ///< "L1", "L2", "L3"
    CacheGeometry geometry;
    Cycles hit_cycles = 1;
    std::vector<std::vector<CoreId>> instances;
};

/// A shared memory resource (front-side bus, cell/NUMA memory, socket
/// memory controller). Bandwidth is expressed relative to the single-core
/// streaming bandwidth so machine definitions stay readable.
struct ContentionDomainSpec {
    std::string name;
    std::vector<CoreId> members;
    /// Aggregate streaming bandwidth through this resource, as a multiple
    /// of MemorySpec::single_core_bandwidth. A value of 1.4 means two
    /// concurrent streamers each get 0.7x of their solo bandwidth.
    double aggregate_bandwidth_factor = 1.0;
    /// Fractional memory-latency increase per additional concurrent
    /// accessor in the domain (models queueing on the resource).
    double latency_factor_per_extra = 0.0;
};

struct MemorySpec {
    Cycles latency_cycles = 200;
    BytesPerSecond single_core_bandwidth = 4.0e9;
    std::vector<ContentionDomainSpec> domains;
};

/// Per-core data TLB. Disabled by default: the paper's benchmarks do not
/// model TLB effects, and the zoo machines match that. The TLB ablation
/// bench enables it to study how translation misses perturb the cache-size
/// sweep, and core/tlb_detect.hpp measures it.
struct TlbSpec {
    bool enabled = false;
    int entries = 64;          ///< fully associative, LRU
    Cycles miss_cycles = 30;   ///< page-walk penalty added to the access
};

/// How a communication layer decides whether a core pair belongs to it.
/// Layers are checked in declaration order; the first match wins, so list
/// them innermost-first (shared-L2, then same package, ..., inter-node).
struct CommScope {
    enum class Kind { SharedCacheLevel, IntraNode, InterNode };
    Kind kind = Kind::IntraNode;
    int level = 0;  ///< cache level index for SharedCacheLevel
};

/// One communication layer (e.g. intra-processor SHM, inter-node IB) with a
/// protocol-aware latency model:
///   t(size) = base_latency + [size > eager_threshold] * rendezvous_extra
///             + size / bandwidth
/// and a concurrency penalty slowdown(N) = N^concurrency_exponent applied
/// when N messages traverse the layer at once (the moderate scalability of
/// Fig. 10b; e.g. exponent 0.56 gives the paper's 7x at 32 messages).
struct CommLayerSpec {
    std::string name;
    CommScope scope;
    Seconds base_latency = 1e-6;
    BytesPerSecond bandwidth = 1.0e9;
    Bytes eager_threshold = 32 * KiB;
    Seconds rendezvous_extra = 0.0;
    double concurrency_exponent = 0.0;
};

struct MachineSpec {
    std::string name;
    int n_cores = 1;
    int cores_per_node = 1;
    double clock_ghz = 2.0;
    Bytes page_size = 4 * KiB;
    PagePolicy page_policy = PagePolicy::Random;
    PrefetcherSpec prefetcher;
    TlbSpec tlb;
    std::vector<CacheLevelSpec> levels;  ///< ordered L1 → last level
    MemorySpec memory;
    std::vector<CommLayerSpec> comm_layers;
    /// Cluster network connecting the nodes (TopologyKind::None for a
    /// single node). When enabled it replaces any InterNode comm layer:
    /// intra-node pairs still classify through comm_layers, inter-node
    /// pairs route over the topology and classify by bottleneck tier
    /// (layer index comm_layers.size() + tier).
    TopologySpec topology;
    /// Relative amplitude of deterministic measurement jitter injected by
    /// SimPlatform/SimNetwork (exercises the suite's clustering logic).
    double measurement_jitter = 0.0;
    std::uint64_t seed = 0x5e21e7;

    [[nodiscard]] int node_of(CoreId core) const { return core / cores_per_node; }
    [[nodiscard]] int node_count() const { return n_cores / cores_per_node; }

    /// Index of the cache instance serving `core` at `level`, or -1.
    [[nodiscard]] int instance_of(int level, CoreId core) const;

    /// True iff a and b are served by the same physical cache at `level`.
    [[nodiscard]] bool share_level(int level, CoreId a, CoreId b) const;

    /// Communication layer classification (first matching scope wins).
    /// Requires a != b and a valid catch-all layer.
    [[nodiscard]] int comm_layer_of(CorePair pair) const;

    /// Page colors of the largest physically indexed cache (used by the
    /// Coloring page policy); 1 when no cache is physically indexed.
    [[nodiscard]] std::uint64_t page_colors() const;

    /// Seconds per simulated cycle.
    [[nodiscard]] Seconds cycle_time() const { return 1e-9 / clock_ghz; }

    /// Stable structural hash over every field: two specs with equal
    /// fields agree, any change perturbs it. Content-addresses the
    /// measurement memo cache (exec::MemoCache) — a cached measurement is
    /// only valid for the exact machine it was taken on.
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// Human-readable structural problems; empty means the spec is sound.
    [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace servet::sim
