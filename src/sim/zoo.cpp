#include "sim/zoo.hpp"

#include "base/check.hpp"

namespace servet::sim::zoo {

namespace {

/// One instance per core.
std::vector<std::vector<CoreId>> private_instances(int cores) {
    std::vector<std::vector<CoreId>> instances;
    instances.reserve(static_cast<std::size_t>(cores));
    for (CoreId c = 0; c < cores; ++c) instances.push_back({c});
    return instances;
}

std::vector<CoreId> core_range(CoreId first, int count) {
    std::vector<CoreId> cores;
    cores.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) cores.push_back(first + i);
    return cores;
}

}  // namespace

MachineSpec dunnington() {
    MachineSpec m;
    m.name = "dunnington";
    m.n_cores = 24;
    m.cores_per_node = 24;
    m.clock_ghz = 2.40;
    m.page_size = 4 * KiB;
    m.page_policy = PagePolicy::Random;
    m.measurement_jitter = 0.02;
    m.seed = 0xd0221;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = 32 * KiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = false};
    l1.hit_cycles = 3;
    l1.instances = private_instances(m.n_cores);

    // L2: 3MB shared by pairs {i, i+12} — the OS-numbering quirk of Fig. 8a.
    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = 3 * MiB, .line_size = 64, .associativity = 12,
                   .physically_indexed = true};
    l2.hit_cycles = 12;
    for (CoreId i = 0; i < 12; ++i) l2.instances.push_back({i, i + 12});

    // L3: 12MB shared by the six cores of a package {3p,3p+1,3p+2}+{+12}.
    CacheLevelSpec l3;
    l3.name = "L3";
    l3.geometry = {.size = 12 * MiB, .line_size = 64, .associativity = 16,
                   .physically_indexed = true};
    l3.hit_cycles = 48;
    for (int p = 0; p < 4; ++p) {
        std::vector<CoreId> package;
        for (CoreId c : {3 * p, 3 * p + 1, 3 * p + 2})
            package.push_back(c);
        for (CoreId c : {3 * p + 12, 3 * p + 13, 3 * p + 14})
            package.push_back(c);
        l3.instances.push_back(std::move(package));
    }
    m.levels = {l1, l2, l3};

    m.memory.latency_cycles = 250;
    m.memory.single_core_bandwidth = 3.5e9;
    // One front-side bus serving all 24 cores: any concurrent pair splits
    // 1.4x of the solo bandwidth — the uniform overhead of Fig. 9a.
    m.memory.domains.push_back(
        {.name = "fsb", .members = core_range(0, 24), .aggregate_bandwidth_factor = 1.4,
         .latency_factor_per_extra = 0.05});

    m.comm_layers = {
        {.name = "shared-L2",
         .scope = {CommScope::Kind::SharedCacheLevel, 1},
         .base_latency = 0.7e-6,
         .bandwidth = 3.2e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 1.0e-6,
         .concurrency_exponent = 0.10},
        {.name = "intra-processor",
         .scope = {CommScope::Kind::SharedCacheLevel, 2},
         .base_latency = 1.0e-6,
         .bandwidth = 2.4e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 1.5e-6,
         .concurrency_exponent = 0.15},
        {.name = "inter-processor",
         .scope = {CommScope::Kind::IntraNode, 0},
         .base_latency = 1.6e-6,
         .bandwidth = 1.6e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 4.0e-6,
         .concurrency_exponent = 0.45},
    };
    return m;
}

MachineSpec finis_terrae(int nodes) {
    SERVET_CHECK_MSG(nodes >= 1 && nodes <= 142, "Finis Terrae has 142 nodes");
    MachineSpec m;
    m.name = nodes == 1 ? "finis-terrae" : "finis-terrae-" + std::to_string(nodes) + "n";
    m.cores_per_node = 16;
    m.n_cores = 16 * nodes;
    m.clock_ghz = 1.60;
    m.page_size = 16 * KiB;  // Linux ia64 default
    m.page_policy = PagePolicy::Random;
    m.measurement_jitter = 0.02;
    m.seed = 0xf7e44e;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = 16 * KiB, .line_size = 64, .associativity = 4,
                   .physically_indexed = false};
    l1.hit_cycles = 2;
    l1.instances = private_instances(m.n_cores);

    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = 256 * KiB, .line_size = 128, .associativity = 8,
                   .physically_indexed = true};
    l2.hit_cycles = 8;
    l2.instances = private_instances(m.n_cores);

    CacheLevelSpec l3;
    l3.name = "L3";
    l3.geometry = {.size = 9 * MiB, .line_size = 128, .associativity = 12,
                   .physically_indexed = true};
    l3.hit_cycles = 30;
    l3.instances = private_instances(m.n_cores);
    m.levels = {l1, l2, l3};

    m.memory.latency_cycles = 300;
    m.memory.single_core_bandwidth = 2.5e9;
    for (int n = 0; n < nodes; ++n) {
        const CoreId base = 16 * n;
        // Buses shared by pairs of dual-core processors: 4 cores per bus.
        for (int b = 0; b < 4; ++b)
            m.memory.domains.push_back({.name = "node" + std::to_string(n) + "-bus" +
                                                std::to_string(b),
                                        .members = core_range(base + 4 * b, 4),
                                        .aggregate_bandwidth_factor = 1.1,
                                        .latency_factor_per_extra = 0.35});
        // Two cells of 8 cores with their own memory.
        for (int cell = 0; cell < 2; ++cell)
            m.memory.domains.push_back({.name = "node" + std::to_string(n) + "-cell" +
                                                std::to_string(cell),
                                        .members = core_range(base + 8 * cell, 8),
                                        .aggregate_bandwidth_factor = 1.5,
                                        .latency_factor_per_extra = 0.12});
    }

    m.comm_layers = {
        {.name = "intra-node-shm",
         .scope = {CommScope::Kind::IntraNode, 0},
         .base_latency = 2.2e-6,
         .bandwidth = 1.8e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 6.0e-6,
         .concurrency_exponent = 0.25},
        {.name = "infiniband",
         .scope = {CommScope::Kind::InterNode, 0},
         .base_latency = 4.4e-6,
         .bandwidth = 0.9e9,
         .eager_threshold = 16 * KiB,
         .rendezvous_extra = 15.0e-6,
         // 32 concurrent messages -> 32^0.565 ~ 7.1x, the paper's "7 times
         // slower" InfiniBand observation (Fig. 10b).
         .concurrency_exponent = 0.565},
    };
    return m;
}

MachineSpec dempsey() {
    MachineSpec m;
    m.name = "dempsey";
    m.n_cores = 2;
    m.cores_per_node = 2;
    m.clock_ghz = 3.20;
    m.page_size = 4 * KiB;
    m.page_policy = PagePolicy::Random;
    m.measurement_jitter = 0.02;
    m.seed = 0xde3357;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = 16 * KiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = false};
    l1.hit_cycles = 2;
    l1.instances = private_instances(m.n_cores);

    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = 2 * MiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = true};
    l2.hit_cycles = 18;
    l2.instances = private_instances(m.n_cores);
    m.levels = {l1, l2};

    m.memory.latency_cycles = 280;
    m.memory.single_core_bandwidth = 3.0e9;
    m.memory.domains.push_back({.name = "fsb", .members = {0, 1},
                                .aggregate_bandwidth_factor = 1.3,
                                .latency_factor_per_extra = 0.05});

    m.comm_layers = {
        {.name = "intra-node-shm",
         .scope = {CommScope::Kind::IntraNode, 0},
         .base_latency = 1.2e-6,
         .bandwidth = 1.5e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 2.0e-6,
         .concurrency_exponent = 0.30},
    };
    return m;
}

MachineSpec athlon3200() {
    MachineSpec m;
    m.name = "athlon3200";
    m.n_cores = 1;
    m.cores_per_node = 1;
    m.clock_ghz = 2.00;
    m.page_size = 4 * KiB;
    m.page_policy = PagePolicy::Random;
    m.measurement_jitter = 0.02;
    m.seed = 0xa7410;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = 64 * KiB, .line_size = 64, .associativity = 2,
                   .physically_indexed = false};
    l1.hit_cycles = 3;
    l1.instances = private_instances(1);

    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = 512 * KiB, .line_size = 64, .associativity = 16,
                   .physically_indexed = true};
    l2.hit_cycles = 20;
    l2.instances = private_instances(1);
    m.levels = {l1, l2};

    m.memory.latency_cycles = 180;
    m.memory.single_core_bandwidth = 2.0e9;
    return m;
}

MachineSpec nehalem2s() {
    MachineSpec m;
    m.name = "nehalem2s";
    m.n_cores = 8;
    m.cores_per_node = 8;
    m.clock_ghz = 2.93;
    m.page_size = 4 * KiB;
    m.page_policy = PagePolicy::Random;
    m.measurement_jitter = 0.02;
    m.seed = 0x8e4a13;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = 32 * KiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = false};
    l1.hit_cycles = 4;
    l1.instances = private_instances(m.n_cores);

    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = 256 * KiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = true};
    l2.hit_cycles = 11;
    l2.instances = private_instances(m.n_cores);

    CacheLevelSpec l3;
    l3.name = "L3";
    l3.geometry = {.size = 8 * MiB, .line_size = 64, .associativity = 16,
                   .physically_indexed = true};
    l3.hit_cycles = 38;
    l3.instances = {core_range(0, 4), core_range(4, 4)};
    m.levels = {l1, l2, l3};

    m.memory.latency_cycles = 190;
    m.memory.single_core_bandwidth = 8.0e9;
    // Integrated per-socket memory controllers: far better scalability
    // than the FSB machines (a pair keeps 80% instead of 55-70%).
    for (int s = 0; s < 2; ++s)
        m.memory.domains.push_back({.name = "socket" + std::to_string(s),
                                    .members = core_range(4 * s, 4),
                                    .aggregate_bandwidth_factor = 1.6,
                                    .latency_factor_per_extra = 0.08});

    m.comm_layers = {
        {.name = "shared-L3",
         .scope = {CommScope::Kind::SharedCacheLevel, 2},
         .base_latency = 0.5e-6,
         .bandwidth = 5.0e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 0.8e-6,
         .concurrency_exponent = 0.10},
        {.name = "qpi",
         .scope = {CommScope::Kind::IntraNode, 0},
         .base_latency = 0.9e-6,
         .bandwidth = 3.0e9,
         .eager_threshold = 32 * KiB,
         .rendezvous_extra = 2.0e-6,
         .concurrency_exponent = 0.30},
    };
    return m;
}

std::vector<MachineSpec> paper_machines() {
    return {dunnington(), finis_terrae(), dempsey(), athlon3200()};
}

// Shared per-node substrate for the cluster machines: private L1/L2, one
// bus contention domain and one IntraNode comm layer per node (none when
// the nodes are unicore). The interesting structure of these machines is
// the network between the nodes, so the nodes themselves stay plain.
MachineSpec cluster_node_machine(std::string name, int nodes, int cores_per_node,
                                 std::uint64_t seed) {
    SERVET_CHECK(nodes >= 1 && cores_per_node >= 1);
    MachineSpec m;
    m.name = std::move(name);
    m.n_cores = nodes * cores_per_node;
    m.cores_per_node = cores_per_node;
    m.clock_ghz = 2.4;
    m.page_size = 4 * KiB;
    m.page_policy = PagePolicy::Random;
    m.measurement_jitter = 0.02;
    m.seed = seed;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = 32 * KiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = false};
    l1.hit_cycles = 3;
    l1.instances = private_instances(m.n_cores);

    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = 512 * KiB, .line_size = 64, .associativity = 8,
                   .physically_indexed = true};
    l2.hit_cycles = 14;
    l2.instances = private_instances(m.n_cores);
    m.levels = {l1, l2};

    m.memory.latency_cycles = 210;
    m.memory.single_core_bandwidth = 5.0e9;
    if (cores_per_node > 1) {
        for (int n = 0; n < nodes; ++n)
            m.memory.domains.push_back({.name = "bus" + std::to_string(n),
                                        .members = core_range(n * cores_per_node, cores_per_node),
                                        .aggregate_bandwidth_factor = 1.5,
                                        .latency_factor_per_extra = 0.06});
        m.comm_layers = {
            {.name = "intra-node",
             .scope = {CommScope::Kind::IntraNode, 0},
             .base_latency = 1.5e-6,
             .bandwidth = 1.5e9,
             .eager_threshold = 32 * KiB,
             .rendezvous_extra = 3.0e-6,
             .concurrency_exponent = 0.40},
        };
    }
    return m;
}

namespace {

/// Fat-tree tier parameters, slowest-growing first (tier 0 = node-edge
/// links). Every tier is strictly slower than the one below it, so the
/// per-class modeled latencies come out strictly ascending — which is what
/// keeps `servet validate`'s comm.latency-order / comm.bandwidth-order
/// checks green on the measured profiles.
std::vector<TopologyTier> fat_tree_tiers(int levels) {
    SERVET_CHECK(levels >= 1 && levels <= 4);
    const TopologyTier all[4] = {
        {.name = "edge", .hop_latency = 2.5e-6, .bandwidth = 1.2e9, .congestion_exponent = 0.35},
        {.name = "aggr", .hop_latency = 5.0e-6, .bandwidth = 0.8e9, .congestion_exponent = 0.45},
        {.name = "core", .hop_latency = 9.0e-6, .bandwidth = 0.5e9, .congestion_exponent = 0.55},
        {.name = "spine", .hop_latency = 14.0e-6, .bandwidth = 0.3e9, .congestion_exponent = 0.60},
    };
    return {all, all + levels};
}

}  // namespace

MachineSpec fat_tree_small() {
    MachineSpec m = cluster_node_machine("ft-small", 4, 2, 0xfa77e1);
    m.topology.kind = TopologyKind::FatTree;
    m.topology.arity = 2;
    m.topology.levels = 2;
    m.topology.tiers = fat_tree_tiers(2);
    return m;
}

MachineSpec torus4x4() {
    MachineSpec m = cluster_node_machine("torus4x4", 16, 1, 0x70545b);
    m.topology.kind = TopologyKind::Torus;
    m.topology.dims = {4, 4};
    m.topology.tiers = {{.name = "torus-link",
                         .hop_latency = 2.0e-6,
                         .bandwidth = 1.0e9,
                         .congestion_exponent = 0.40}};
    return m;
}

MachineSpec fat_tree_cluster(int levels, int cores_per_node) {
    SERVET_CHECK(levels >= 1 && levels <= 4);
    int nodes = 1;
    for (int l = 0; l < levels; ++l) nodes *= 4;
    MachineSpec m = cluster_node_machine("ft" + std::to_string(nodes * cores_per_node), nodes,
                                 cores_per_node, 0xc1a540 + static_cast<std::uint64_t>(levels));
    m.topology.kind = TopologyKind::FatTree;
    m.topology.arity = 4;
    m.topology.levels = levels;
    m.topology.tiers = fat_tree_tiers(levels);
    return m;
}

MachineSpec dragonfly_cluster(int groups, int routers, int nodes_per_router, int cores_per_node) {
    const int nodes = groups * routers * nodes_per_router;
    MachineSpec m = cluster_node_machine("df" + std::to_string(nodes * cores_per_node), nodes,
                                 cores_per_node, 0xd7a90f);
    m.topology.kind = TopologyKind::Dragonfly;
    m.topology.groups = groups;
    m.topology.routers = routers;
    m.topology.nodes_per_router = nodes_per_router;
    m.topology.tiers = {
        {.name = "injection", .hop_latency = 2.0e-6, .bandwidth = 1.5e9,
         .congestion_exponent = 0.30},
        {.name = "local", .hop_latency = 4.0e-6, .bandwidth = 0.9e9,
         .congestion_exponent = 0.45},
        {.name = "global", .hop_latency = 8.0e-6, .bandwidth = 0.5e9,
         .congestion_exponent = 0.55},
    };
    return m;
}

MachineSpec synthetic(const SyntheticOptions& options) {
    SERVET_CHECK(options.cores >= 1);
    SERVET_CHECK(options.l2_sharing >= 1 && options.cores % options.l2_sharing == 0);
    MachineSpec m;
    m.name = "synthetic";
    m.n_cores = options.cores;
    m.cores_per_node = options.cores;
    m.clock_ghz = 2.0;
    m.page_size = options.page_size;
    m.page_policy = options.page_policy;
    m.measurement_jitter = options.jitter;
    m.seed = options.seed;

    CacheLevelSpec l1;
    l1.name = "L1";
    l1.geometry = {.size = options.l1_size, .line_size = 64, .associativity = options.l1_assoc,
                   .physically_indexed = false};
    l1.hit_cycles = 2;
    l1.instances = private_instances(options.cores);

    CacheLevelSpec l2;
    l2.name = "L2";
    l2.geometry = {.size = options.l2_size, .line_size = 64, .associativity = options.l2_assoc,
                   .physically_indexed = true};
    l2.hit_cycles = 16;
    for (CoreId c = 0; c < options.cores; c += options.l2_sharing)
        l2.instances.push_back(core_range(c, options.l2_sharing));
    m.levels = {l1, l2};

    m.memory.latency_cycles = 220;
    m.memory.single_core_bandwidth = 3.0e9;
    m.memory.domains.push_back({.name = "bus", .members = core_range(0, options.cores),
                                .aggregate_bandwidth_factor = 1.5,
                                .latency_factor_per_extra = 0.05});

    if (options.cores > 1) {
        m.comm_layers = {
            {.name = "shared-L2",
             .scope = {CommScope::Kind::SharedCacheLevel, 1},
             .base_latency = 0.8e-6,
             .bandwidth = 2.5e9,
             .eager_threshold = 32 * KiB,
             .rendezvous_extra = 1.0e-6,
             .concurrency_exponent = 0.15},
            {.name = "intra-node",
             .scope = {CommScope::Kind::IntraNode, 0},
             .base_latency = 1.5e-6,
             .bandwidth = 1.5e9,
             .eager_threshold = 32 * KiB,
             .rendezvous_extra = 3.0e-6,
             .concurrency_exponent = 0.40},
        };
    }
    return m;
}

}  // namespace servet::sim::zoo
