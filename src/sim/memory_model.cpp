#include "sim/memory_model.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace servet::sim {

MemoryModel::MemoryModel(const MachineSpec& spec) : spec_(&spec) {}

int MemoryModel::active_in_domain(const ContentionDomainSpec& domain,
                                  const std::vector<CoreId>& active) const {
    int count = 0;
    for (CoreId c : active) {
        if (std::find(domain.members.begin(), domain.members.end(), c) != domain.members.end())
            ++count;
    }
    return count;
}

BytesPerSecond MemoryModel::stream_bandwidth(CoreId core,
                                             const std::vector<CoreId>& active) const {
    SERVET_CHECK(std::find(active.begin(), active.end(), core) != active.end());
    const MemorySpec& memory = spec_->memory;
    double bandwidth = memory.single_core_bandwidth;
    for (const ContentionDomainSpec& domain : memory.domains) {
        if (std::find(domain.members.begin(), domain.members.end(), core) == domain.members.end())
            continue;
        const int sharers = active_in_domain(domain, active);
        SERVET_CHECK(sharers >= 1);
        const double share =
            domain.aggregate_bandwidth_factor * memory.single_core_bandwidth /
            static_cast<double>(sharers);
        bandwidth = std::min(bandwidth, share);
    }
    return bandwidth;
}

std::vector<double> MemoryModel::latency_multipliers(const std::vector<CoreId>& active) const {
    std::vector<double> multipliers;
    multipliers.reserve(active.size());
    for (CoreId core : active) multipliers.push_back(latency_multiplier(core, active));
    return multipliers;
}

double MemoryModel::latency_multiplier(CoreId core, const std::vector<CoreId>& active) const {
    double multiplier = 1.0;
    for (const ContentionDomainSpec& domain : spec_->memory.domains) {
        if (std::find(domain.members.begin(), domain.members.end(), core) == domain.members.end())
            continue;
        const int sharers = active_in_domain(domain, active);
        if (sharers > 1)
            multiplier = std::max(
                multiplier, 1.0 + domain.latency_factor_per_extra * static_cast<double>(sharers - 1));
    }
    return multiplier;
}

}  // namespace servet::sim
