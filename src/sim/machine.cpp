#include "sim/machine.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/hash.hpp"
#include "base/units.hpp"

namespace servet::sim {

int MachineSpec::instance_of(int level, CoreId core) const {
    SERVET_CHECK(level >= 0 && level < static_cast<int>(levels.size()));
    const auto& instances = levels[static_cast<std::size_t>(level)].instances;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        if (std::find(instances[i].begin(), instances[i].end(), core) != instances[i].end())
            return static_cast<int>(i);
    }
    return -1;
}

bool MachineSpec::share_level(int level, CoreId a, CoreId b) const {
    const int ia = instance_of(level, a);
    return ia >= 0 && ia == instance_of(level, b);
}

int MachineSpec::comm_layer_of(CorePair pair) const {
    SERVET_CHECK_MSG(pair.a != pair.b, "comm layer of a core with itself is undefined");
    const bool same_node = node_of(pair.a) == node_of(pair.b);
    if (topology.enabled() && !same_node) {
        const Topology topo(topology);
        return static_cast<int>(comm_layers.size()) +
               topo.route_class(node_of(pair.a), node_of(pair.b)).tier;
    }
    for (std::size_t i = 0; i < comm_layers.size(); ++i) {
        const CommScope& scope = comm_layers[i].scope;
        switch (scope.kind) {
            case CommScope::Kind::SharedCacheLevel:
                if (same_node && share_level(scope.level, pair.a, pair.b))
                    return static_cast<int>(i);
                break;
            case CommScope::Kind::IntraNode:
                if (same_node) return static_cast<int>(i);
                break;
            case CommScope::Kind::InterNode:
                if (!same_node) return static_cast<int>(i);
                break;
        }
    }
    SERVET_CHECK_MSG(false, "no comm layer matches the pair; spec lacks a catch-all");
    return -1;
}

std::uint64_t MachineSpec::page_colors() const {
    std::uint64_t colors = 1;
    for (const CacheLevelSpec& level : levels) {
        if (!level.geometry.physically_indexed) continue;
        colors = std::max(colors, level.geometry.page_set_count(page_size));
    }
    return colors;
}

std::uint64_t MachineSpec::fingerprint() const {
    Fingerprint fp;
    fp.add(name);
    fp.add(n_cores);
    fp.add(cores_per_node);
    fp.add(clock_ghz);
    fp.add(page_size);
    fp.add(static_cast<int>(page_policy));
    fp.add(prefetcher.enabled);
    fp.add(prefetcher.max_stride);
    fp.add(prefetcher.trigger_streak);
    fp.add(prefetcher.degree);
    fp.add(tlb.enabled);
    fp.add(tlb.entries);
    fp.add(tlb.miss_cycles);
    for (const CacheLevelSpec& level : levels) {
        fp.add(level.name);
        fp.add(level.geometry.size);
        fp.add(level.geometry.line_size);
        fp.add(level.geometry.associativity);
        fp.add(level.geometry.physically_indexed);
        fp.add(level.hit_cycles);
        for (const auto& instance : level.instances) {
            fp.add(static_cast<std::uint64_t>(instance.size()));
            for (const CoreId c : instance) fp.add(c);
        }
    }
    fp.add(memory.latency_cycles);
    fp.add(memory.single_core_bandwidth);
    for (const ContentionDomainSpec& domain : memory.domains) {
        fp.add(domain.name);
        for (const CoreId c : domain.members) fp.add(c);
        fp.add(domain.aggregate_bandwidth_factor);
        fp.add(domain.latency_factor_per_extra);
    }
    for (const CommLayerSpec& layer : comm_layers) {
        fp.add(layer.name);
        fp.add(static_cast<int>(layer.scope.kind));
        fp.add(layer.scope.level);
        fp.add(layer.base_latency);
        fp.add(layer.bandwidth);
        fp.add(layer.eager_threshold);
        fp.add(layer.rendezvous_extra);
        fp.add(layer.concurrency_exponent);
    }
    if (topology.enabled()) {
        fp.add(static_cast<int>(topology.kind));
        fp.add(topology.arity);
        fp.add(topology.levels);
        for (const int d : topology.dims) fp.add(d);
        fp.add(topology.groups);
        fp.add(topology.routers);
        fp.add(topology.nodes_per_router);
        fp.add(topology.switch_count);
        fp.add(topology.custom_nodes);
        for (const TopologyLink& link : topology.links) {
            fp.add(link.a);
            fp.add(link.b);
            fp.add(link.tier);
        }
        for (const TopologyTier& tier : topology.tiers) {
            fp.add(tier.name);
            fp.add(tier.hop_latency);
            fp.add(tier.bandwidth);
            fp.add(tier.congestion_exponent);
        }
    }
    fp.add(measurement_jitter);
    fp.add(seed);
    return fp.value();
}

std::vector<std::string> MachineSpec::validate() const {
    std::vector<std::string> problems;
    const auto complain = [&](std::string text) { problems.push_back(std::move(text)); };

    if (n_cores < 1) complain("n_cores must be >= 1");
    if (cores_per_node < 1 || n_cores % cores_per_node != 0)
        complain("cores_per_node must divide n_cores");
    if (clock_ghz <= 0) complain("clock_ghz must be positive");
    if (page_size < 512 || (page_size & (page_size - 1)) != 0)
        complain("page_size must be a power of two >= 512");

    Bytes previous_size = 0;
    for (std::size_t li = 0; li < levels.size(); ++li) {
        const CacheLevelSpec& level = levels[li];
        if (!level.geometry.valid())
            complain(level.name + ": invalid geometry (" + format_bytes(level.geometry.size) + ")");
        if (level.geometry.size <= previous_size)
            complain(level.name + ": cache levels must strictly grow");
        previous_size = level.geometry.size;
        if (level.hit_cycles <= 0) complain(level.name + ": hit_cycles must be positive");

        // Instances must partition [0, n_cores).
        std::vector<int> seen(static_cast<std::size_t>(std::max(n_cores, 1)), 0);
        for (const auto& instance : level.instances) {
            if (instance.empty()) complain(level.name + ": empty cache instance");
            for (CoreId c : instance) {
                if (c < 0 || c >= n_cores) {
                    complain(level.name + ": core id out of range");
                } else {
                    ++seen[static_cast<std::size_t>(c)];
                }
            }
        }
        for (int c = 0; c < n_cores; ++c) {
            if (seen[static_cast<std::size_t>(c)] != 1)
                complain(level.name + ": core " + std::to_string(c) +
                         " must appear in exactly one instance");
        }
        // Only consult page_set_count on a geometry that passed valid():
        // it CHECK-aborts on degenerate shapes, and validate() must
        // complain, not abort.
        if (level.geometry.physically_indexed && level.geometry.valid() &&
            level.geometry.page_set_count(page_size) == 0)
            complain(level.name + ": fewer than one page set; page size too large");
    }
    if (!levels.empty() && levels.front().geometry.physically_indexed)
        complain("L1 is expected to be virtually indexed (Section III-A)");

    if (memory.latency_cycles <= 0) complain("memory latency must be positive");
    if (memory.single_core_bandwidth <= 0) complain("memory bandwidth must be positive");
    for (const ContentionDomainSpec& domain : memory.domains) {
        if (domain.members.empty()) complain("contention domain '" + domain.name + "' is empty");
        if (domain.aggregate_bandwidth_factor <= 0)
            complain("contention domain '" + domain.name + "' needs positive bandwidth factor");
        for (CoreId c : domain.members) {
            if (c < 0 || c >= n_cores)
                complain("contention domain '" + domain.name + "': core id out of range");
        }
    }

    if (n_cores > 1) {
        if (comm_layers.empty() && !(topology.enabled() && cores_per_node == 1)) {
            complain("multicore machine needs at least one comm layer");
        } else {
            const bool multi_node = node_count() > 1;
            bool has_intra_catchall = false;
            bool has_inter = false;
            for (const CommLayerSpec& layer : comm_layers) {
                if (layer.scope.kind == CommScope::Kind::IntraNode) has_intra_catchall = true;
                if (layer.scope.kind == CommScope::Kind::InterNode) has_inter = true;
                if (layer.scope.kind == CommScope::Kind::SharedCacheLevel &&
                    (layer.scope.level < 0 ||
                     layer.scope.level >= static_cast<int>(levels.size())))
                    complain("comm layer '" + layer.name + "': bad cache level");
                if (layer.bandwidth <= 0 || layer.base_latency < 0)
                    complain("comm layer '" + layer.name + "': bad latency/bandwidth");
            }
            if (cores_per_node > 1 && !has_intra_catchall)
                complain("missing IntraNode catch-all comm layer");
            if (topology.enabled()) {
                // The topology replaces the flat InterNode layer; the two
                // classifications must not compete for inter-node pairs.
                if (has_inter)
                    complain("topology-connected machine must not declare an InterNode layer");
            } else if (multi_node && !has_inter) {
                complain("multi-node machine missing InterNode layer");
            }
        }
    }
    if (topology.enabled()) {
        for (const std::string& problem : topology.validate())
            complain("topology: " + problem);
        if (topology.tiers.empty())
            complain("topology: tier parameters are required on a machine");
        if (topology.node_count() != node_count())
            complain("topology connects " + std::to_string(topology.node_count()) +
                     " nodes but the machine has " + std::to_string(node_count()));
    }
    if (measurement_jitter < 0 || measurement_jitter >= 0.5)
        complain("measurement_jitter must be in [0, 0.5)");
    if (tlb.enabled && (tlb.entries <= 0 || tlb.miss_cycles <= 0))
        complain("enabled TLB needs positive entries and miss cycles");
    return problems;
}

}  // namespace servet::sim
