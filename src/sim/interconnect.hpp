// Interconnect model: per-layer, protocol-aware message latency with a
// concurrency penalty. Covers the three layers the paper characterizes —
// intra-processor shared memory, inter-processor shared memory, and the
// cluster network — including the eager/rendezvous protocol switch that
// makes LogP/Hockney-style single-line models inaccurate (Section III-D)
// and the sub-linear scalability of Fig. 10b. On a machine with a cluster
// topology (MachineSpec::topology), inter-node pairs route over the
// topology instead: their latency is the per-hop tier sum and their layer
// index is comm_layers.size() + the route's bottleneck tier.
#pragma once

#include <optional>
#include <vector>

#include "base/types.hpp"
#include "sim/machine.hpp"
#include "sim/topology.hpp"

namespace servet::sim {

class InterconnectModel {
  public:
    explicit InterconnectModel(const MachineSpec& spec);

    /// Index of the layer carrying traffic between the pair. Topology
    /// tiers follow the comm layers: [0, comm_layers.size()) are
    /// intra-node layers, the rest are bottleneck tiers.
    [[nodiscard]] int layer_of(CorePair pair) const;

    /// Intra-node layer spec; `index` must be below comm_layers.size().
    [[nodiscard]] const CommLayerSpec& layer(int index) const;
    [[nodiscard]] int layer_count() const {
        return static_cast<int>(spec_->comm_layers.size() + spec_->topology.tiers.size());
    }

    /// One-way latency for an isolated message of `size` bytes.
    [[nodiscard]] Seconds latency(CorePair pair, Bytes size) const;

    /// One-way latency when `concurrent` messages (including this one)
    /// traverse the same layer simultaneously: latency * N^exponent.
    [[nodiscard]] Seconds latency_concurrent(CorePair pair, Bytes size, int concurrent) const;

    [[nodiscard]] const MachineSpec& spec() const { return *spec_; }

    /// The cluster topology, when the machine has one.
    [[nodiscard]] const Topology* topology() const {
        return topology_ ? &*topology_ : nullptr;
    }

  private:
    /// Inter-node pair on a topology machine? (The topology route path.)
    [[nodiscard]] bool routed(CorePair pair) const;

    const MachineSpec* spec_;
    std::optional<Topology> topology_;
};

}  // namespace servet::sim
