// Interconnect model: per-layer, protocol-aware message latency with a
// concurrency penalty. Covers the three layers the paper characterizes —
// intra-processor shared memory, inter-processor shared memory, and the
// cluster network — including the eager/rendezvous protocol switch that
// makes LogP/Hockney-style single-line models inaccurate (Section III-D)
// and the sub-linear scalability of Fig. 10b.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "sim/machine.hpp"

namespace servet::sim {

class InterconnectModel {
  public:
    explicit InterconnectModel(const MachineSpec& spec);

    /// Index of the layer carrying traffic between the pair.
    [[nodiscard]] int layer_of(CorePair pair) const { return spec_->comm_layer_of(pair); }

    [[nodiscard]] const CommLayerSpec& layer(int index) const;
    [[nodiscard]] int layer_count() const { return static_cast<int>(spec_->comm_layers.size()); }

    /// One-way latency for an isolated message of `size` bytes.
    [[nodiscard]] Seconds latency(CorePair pair, Bytes size) const;

    /// One-way latency when `concurrent` messages (including this one)
    /// traverse the same layer simultaneously: latency * N^exponent.
    [[nodiscard]] Seconds latency_concurrent(CorePair pair, Bytes size, int concurrent) const;

    [[nodiscard]] const MachineSpec& spec() const { return *spec_; }

  private:
    const MachineSpec* spec_;
};

}  // namespace servet::sim
