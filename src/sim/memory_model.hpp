// Steady-state memory contention model. Concurrent streaming cores split
// each shared resource's aggregate bandwidth; a core's effective bandwidth
// is capped by the tightest resource on its path. This produces exactly the
// tiered structure the paper measures on Finis Terrae (Fig. 9a): bus-mates
// are slower than cell-mates, cell-mates slower than the solo reference,
// and cross-cell pairs see no overhead at all.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "sim/machine.hpp"

namespace servet::sim {

class MemoryModel {
  public:
    explicit MemoryModel(const MachineSpec& spec);

    /// Streaming (copy) bandwidth seen by `core` while every core in
    /// `active` (which must include `core`) streams concurrently.
    [[nodiscard]] BytesPerSecond stream_bandwidth(CoreId core,
                                                  const std::vector<CoreId>& active) const;

    /// Multiplier (>= 1) on the main-memory access latency for `core` when
    /// the cores in `active` are hitting memory concurrently; models
    /// queueing on shared buses during the cache benchmarks.
    [[nodiscard]] double latency_multiplier(CoreId core,
                                            const std::vector<CoreId>& active) const;

    /// latency_multiplier for every core in `active` at once, aligned with
    /// `active` — the per-traversal batch the engine resolves up front.
    [[nodiscard]] std::vector<double> latency_multipliers(
        const std::vector<CoreId>& active) const;

    [[nodiscard]] const MachineSpec& spec() const { return *spec_; }

  private:
    [[nodiscard]] int active_in_domain(const ContentionDomainSpec& domain,
                                       const std::vector<CoreId>& active) const;

    const MachineSpec* spec_;
};

}  // namespace servet::sim
