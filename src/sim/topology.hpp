// Cluster topology model: the network that connects a machine's nodes.
// Three parametric families (fat-tree, 2D/3D torus, dragonfly) plus an
// explicit custom tree, each with per-tier link parameters and fully
// deterministic routing. The modeled point-to-point latency of a route is
// *exactly* the sum of its per-hop tier terms — the decomposition
// invariant the topology-oracle property test pins — and routing always
// takes a shortest-hop path (checked against a brute-force BFS oracle).
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"

namespace servet::sim {

enum class TopologyKind { None, FatTree, Torus, Dragonfly, Custom };

[[nodiscard]] const char* topology_kind_name(TopologyKind kind);

/// Inverse of topology_kind_name; false when `text` names no kind.
[[nodiscard]] bool topology_kind_parse(const std::string& text, TopologyKind* kind);

/// One link tier (edge class) of the topology: every hop over a tier-k
/// link costs hop_latency + size / bandwidth, and k concurrent messages
/// crossing the tier slow each other down by N^congestion_exponent.
struct TopologyTier {
    std::string name;
    Seconds hop_latency = 1e-6;
    BytesPerSecond bandwidth = 1.0e9;
    double congestion_exponent = 0.0;
};

/// One undirected link in the unified vertex space: nodes first
/// ([0, node_count)), then switches ([node_count, vertex_count)).
struct TopologyLink {
    int a = 0;
    int b = 0;
    int tier = 0;

    friend bool operator==(const TopologyLink&, const TopologyLink&) = default;
};

/// One hop of a route, in traversal order.
struct RouteHop {
    int from = 0;
    int to = 0;
    int tier = 0;

    friend bool operator==(const RouteHop&, const RouteHop&) = default;
};

/// Declarative topology description. Only the fields of the selected kind
/// are meaningful:
///  - FatTree: `arity` (power of two) children per switch, `levels` switch
///    levels; arity^levels nodes. Tier l-1 is the edge class between
///    level l-1 and level l (tier 0 = node-to-edge-switch links).
///    Requires `levels` tiers.
///  - Torus: `dims` (2 or 3 entries) with wraparound links in every
///    dimension; dimension-ordered minimal routing (ties go the positive
///    direction). All links are tier 0; requires 1 tier.
///  - Dragonfly: `groups` groups of `routers` routers with `nodes_per_router`
///    nodes each; routers within a group are all-to-all, and router k of
///    any two groups are connected directly. Tiers: 0 = injection
///    (node-router), 1 = intra-group, 2 = global. Requires 3 tiers.
///  - Custom: explicit `links` forming a tree over `switch_count` switches
///    and the nodes; requires max link tier + 1 tiers.
struct TopologySpec {
    TopologyKind kind = TopologyKind::None;
    int arity = 2;
    int levels = 1;
    std::vector<int> dims;
    int groups = 2;
    int routers = 2;
    int nodes_per_router = 1;
    std::vector<TopologyLink> links;
    int switch_count = 0;
    int custom_nodes = 0;
    std::vector<TopologyTier> tiers;

    [[nodiscard]] bool enabled() const { return kind != TopologyKind::None; }
    [[nodiscard]] int node_count() const;
    [[nodiscard]] int required_tiers() const;
    /// Structural problems (ignores tiers when empty, so a routing-only
    /// spec — e.g. one rebuilt from a profile — validates too).
    [[nodiscard]] std::vector<std::string> validate() const;
};

/// Equivalence class of a node pair's route: hop count plus bottleneck
/// (highest-index) tier. Pairs of one class have identical modeled
/// latency, so the comm-costs phase probes a few representatives per
/// class instead of every pair.
struct RouteClass {
    int hops = 0;
    int tier = 0;

    friend bool operator==(const RouteClass&, const RouteClass&) = default;
    friend auto operator<=>(const RouteClass&, const RouteClass&) = default;
};

/// Deterministic routing and latency over a validated TopologySpec.
class Topology {
  public:
    /// `spec` must validate (checked).
    explicit Topology(TopologySpec spec);

    [[nodiscard]] const TopologySpec& spec() const { return spec_; }
    [[nodiscard]] int node_count() const { return spec_.node_count(); }
    /// Nodes plus switches: the vertex space of links() and route hops.
    [[nodiscard]] int vertex_count() const;

    /// Every undirected link once; the graph the BFS oracle runs on.
    [[nodiscard]] std::vector<TopologyLink> links() const;

    /// Shortest-hop route between two distinct nodes. Deterministic: the
    /// same pair always routes identically.
    [[nodiscard]] std::vector<RouteHop> route(int node_a, int node_b) const;

    [[nodiscard]] RouteClass route_class(int node_a, int node_b) const;

    /// One-way latency of a `size`-byte message: exactly
    /// sum over route hops of (tier.hop_latency + size / tier.bandwidth),
    /// accumulated in route order. Requires the spec's tiers to be filled.
    [[nodiscard]] Seconds latency(int node_a, int node_b, Bytes size) const;

    [[nodiscard]] const TopologyTier& tier(int index) const;

  private:
    [[nodiscard]] std::vector<RouteHop> route_fat_tree(int a, int b) const;
    [[nodiscard]] std::vector<RouteHop> route_torus(int a, int b) const;
    [[nodiscard]] std::vector<RouteHop> route_dragonfly(int a, int b) const;
    [[nodiscard]] std::vector<RouteHop> route_custom(int a, int b) const;

    TopologySpec spec_;
    std::vector<std::vector<std::pair<int, int>>> custom_adjacency_;  // (peer, tier)
};

/// Representative core pairs for the comm-costs phase of a cluster: every
/// intra-node pair of node 0, plus up to `per_class` node-disjoint pairs
/// per inter-node route class (using core 0 of each node). Every route
/// class that exists in the topology is covered, so latency clustering
/// sees each distinct modeled latency without probing all O(n^2) pairs.
[[nodiscard]] std::vector<CorePair> cluster_probe_pairs(const TopologySpec& topology,
                                                        int cores_per_node, int per_class);

}  // namespace servet::sim
