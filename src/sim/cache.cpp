#include "sim/cache.hpp"

#include <bit>

#include "base/check.hpp"

namespace servet::sim {

bool CacheGeometry::valid() const {
    if (size == 0 || line_size == 0 || associativity <= 0) return false;
    if (!std::has_single_bit(line_size)) return false;
    const Bytes way_bytes = line_size * static_cast<Bytes>(associativity);
    return size % way_bytes == 0 && set_count() >= 1;
}

SetAssocCache::SetAssocCache(const CacheGeometry& geometry) : geometry_(geometry) {
    SERVET_CHECK_MSG(geometry.valid(), "invalid cache geometry");
    line_shift_ = static_cast<std::uint64_t>(std::countr_zero(geometry.line_size));
    sets_ = geometry.set_count();
    ways_.resize(sets_ * static_cast<std::uint64_t>(geometry.associativity));
}

SetAssocCache::Way* SetAssocCache::find(std::uint64_t line) {
    const std::uint64_t set = set_index(line);
    const std::uint64_t tag = tag_of(line);
    Way* base = &ways_[set * static_cast<std::uint64_t>(geometry_.associativity)];
    for (int w = 0; w < geometry_.associativity; ++w) {
        if (base[w].tag == tag) return &base[w];
    }
    return nullptr;
}

SetAssocCache::Way& SetAssocCache::victim(std::uint64_t set) {
    Way* base = &ways_[set * static_cast<std::uint64_t>(geometry_.associativity)];
    Way* lru = base;
    for (int w = 1; w < geometry_.associativity; ++w) {
        if (base[w].tag == kInvalidTag) return base[w];  // free way first
        if (base[w].stamp < lru->stamp) lru = &base[w];
    }
    return *lru;
}

bool SetAssocCache::access(std::uint64_t addr) {
    const std::uint64_t line = addr >> line_shift_;
    ++clock_;
    if (Way* way = find(line)) {
        way->stamp = clock_;
        ++hits_;
        if (way->prefetched) {
            ++prefetch_useful_;
            way->prefetched = false;
        }
        return true;
    }
    ++misses_;
    Way& way = victim(set_index(line));
    if (way.tag != kInvalidTag) ++evictions_;
    way.tag = tag_of(line);
    way.stamp = clock_;
    way.prefetched = false;
    return false;
}

void SetAssocCache::prefetch_fill(std::uint64_t addr) {
    const std::uint64_t line = addr >> line_shift_;
    ++clock_;
    if (Way* way = find(line)) {
        way->stamp = clock_;
        return;
    }
    Way& way = victim(set_index(line));
    if (way.tag != kInvalidTag) ++evictions_;
    way.tag = tag_of(line);
    way.stamp = clock_;
    way.prefetched = true;
    ++prefetch_fills_;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t set = line % sets_;
    const std::uint64_t tag = line / sets_;
    const Way* base = &ways_[set * static_cast<std::uint64_t>(geometry_.associativity)];
    for (int w = 0; w < geometry_.associativity; ++w) {
        if (base[w].tag == tag) return true;
    }
    return false;
}

void SetAssocCache::invalidate_all() {
    for (Way& way : ways_) way = Way{};
    clock_ = 0;
}

}  // namespace servet::sim
