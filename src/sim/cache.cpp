#include "sim/cache.hpp"

#include <algorithm>
#include <bit>

#include "base/check.hpp"

namespace servet::sim {

bool CacheGeometry::valid() const {
    if (size == 0 || line_size == 0 || associativity <= 0) return false;
    if (!std::has_single_bit(line_size)) return false;
    const Bytes way_bytes = line_size * static_cast<Bytes>(associativity);
    // `size % way_bytes == 0 && size > 0` implies at least one set, so the
    // set_count() call below never trips its degenerate-geometry check.
    return size % way_bytes == 0 && set_count() >= 1;
}

SetAssocCache::SetAssocCache(const CacheGeometry& geometry) : geometry_(geometry) {
    SERVET_CHECK_MSG(geometry.valid(), "invalid cache geometry");
    line_shift_ = static_cast<std::uint64_t>(std::countr_zero(geometry.line_size));
    sets_ = geometry.set_count();
    assoc_ = geometry.associativity;
    sets_pow2_ = std::has_single_bit(sets_);
    if (sets_pow2_) {
        set_shift_ = static_cast<std::uint64_t>(std::countr_zero(sets_));
        set_mask_ = sets_ - 1;
    }
    const std::uint64_t n_ways = sets_ * static_cast<std::uint64_t>(geometry.associativity);
    tags_.assign(n_ways, kInvalidTag);
    stamps_.assign(n_ways, 0);
    prefetched_.assign(n_ways, 0);
}

bool SetAssocCache::contains(std::uint64_t addr) const {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t base = set_index(line) * static_cast<std::uint64_t>(assoc_);
    const std::uint64_t tag = tag_of(line);
    for (int w = 0; w < assoc_; ++w) {
        if (tags_[base + static_cast<std::uint64_t>(w)] == tag) return true;
    }
    return false;
}

void SetAssocCache::invalidate_all() {
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    std::fill(prefetched_.begin(), prefetched_.end(), 0);
    clock_ = 0;
}

}  // namespace servet::sim
