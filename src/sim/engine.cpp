#include "sim/engine.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "obs/trace.hpp"

namespace servet::sim {

namespace {
/// Distinct, page-aligned virtual address ranges per (run, core) so every
/// traversal call allocates "fresh" pages and draws a fresh physical
/// placement, like a real malloc+touch.
constexpr std::uint64_t kCoreSpaceBits = 36;  // 64 GiB of virtual space per array

/// Sentinel for the per-core one-entry page-translation caches: no array
/// page can shift down to all-ones (arrays live at (core+1) << 36).
constexpr std::uint64_t kNoPage = ~0ULL;

/// How many of a run's `count` accesses emit prefetches under `plan` —
/// the closed form of the per-access condition in batched_access
/// (access 0 emits iff first_emits; access i >= 1 emits iff
/// i >= emit_from). Lets the batched pass account for translations and
/// prefetch issues once per run instead of once per access.
std::uint64_t emitting_accesses(const StreamRunPlan& plan, std::uint64_t count) {
    if (count == 0) return 0;
    std::uint64_t n = plan.first_emits ? 1 : 0;
    const std::uint64_t from = plan.emit_from < 1 ? 1 : plan.emit_from;
    if (count > from) n += count - from;
    return n;
}
}  // namespace

/// Per-core state of one batched traversal: the address cursor, the core's
/// resolved lookup path, its prefetcher's run plan, and the two one-entry
/// page-translation caches. Demand and fill translations cache separately
/// on purpose: a prefetch fill's page is never TLB-validated, so letting a
/// fill populate the demand cache would skip a TLB access that the scalar
/// oracle performs (and that could miss).
struct MachineSim::CoreRun {
    std::uint64_t base = 0;    ///< start of this core's virtual array
    std::uint64_t cursor = 0;  ///< address of the next demand access
    double latency_mult = 1.0;
    const ResolvedLevel* path = nullptr;
    std::size_t path_len = 0;
    SetAssocCache* tlb = nullptr;  ///< null when the TLB model is off
    StreamPrefetcher* prefetcher = nullptr;
    int degree = 0;  ///< prefetcher->spec().degree, hoisted out of the hot loop
    StreamRunPlan plan;
    std::uint64_t demand_page = kNoPage;
    std::uint64_t demand_frame_base = 0;
    std::uint64_t fill_page = kNoPage;
    std::uint64_t fill_frame_base = 0;
    Cycles total = 0;  ///< measured-pass cycle accumulator
};

MachineSim::MachineSim(MachineSpec spec) : spec_(std::move(spec)), memory_(spec_) {
    const auto problems = spec_.validate();
    SERVET_CHECK_MSG(problems.empty(), "machine spec failed validation");

    caches_.reserve(spec_.levels.size());
    instance_of_.reserve(spec_.levels.size());
    for (const CacheLevelSpec& level : spec_.levels) {
        std::vector<SetAssocCache> instances;
        instances.reserve(level.instances.size());
        for (std::size_t i = 0; i < level.instances.size(); ++i)
            instances.emplace_back(level.geometry);
        caches_.push_back(std::move(instances));

        std::vector<int> core_to_instance(static_cast<std::size_t>(spec_.n_cores), -1);
        for (std::size_t i = 0; i < level.instances.size(); ++i)
            for (CoreId c : level.instances[i])
                core_to_instance[static_cast<std::size_t>(c)] = static_cast<int>(i);
        instance_of_.push_back(std::move(core_to_instance));
    }
    prefetchers_.assign(static_cast<std::size_t>(spec_.n_cores),
                        StreamPrefetcher(spec_.prefetcher));

    if (spec_.tlb.enabled) {
        // A fully associative TLB over virtual pages is a one-set cache
        // with page-sized "lines" and one way per entry.
        const CacheGeometry tlb_geometry{
            .size = static_cast<Bytes>(spec_.tlb.entries) * spec_.page_size,
            .line_size = spec_.page_size,
            .associativity = spec_.tlb.entries,
            .physically_indexed = false};
        tlbs_.assign(static_cast<std::size_t>(spec_.n_cores), SetAssocCache(tlb_geometry));
    }

    // Physical memory: comfortably larger than all caches plus any working
    // set we simulate — 16 GiB of frames keeps random placement uniform.
    const std::uint64_t frames = (16 * GiB) / spec_.page_size;
    mapper_ = std::make_unique<PageMapper>(spec_.page_policy, spec_.page_size, frames,
                                           spec_.page_colors(), spec_.seed);
    page_shift_ = mapper_->page_shift();
    page_mask_ = spec_.page_size - 1;

    build_resolved_paths();
    register_counters();
}

void MachineSim::build_resolved_paths() {
    resolved_paths_.assign(static_cast<std::size_t>(spec_.n_cores),
                           std::vector<ResolvedLevel>{});
    for (CoreId core = 0; core < spec_.n_cores; ++core) {
        std::vector<ResolvedLevel>& path = resolved_paths_[static_cast<std::size_t>(core)];
        path.reserve(spec_.levels.size());
        for (std::size_t level = 0; level < spec_.levels.size(); ++level) {
            const int instance = instance_of_[level][static_cast<std::size_t>(core)];
            SERVET_CHECK_MSG(instance >= 0, "core not covered by a cache instance");
            path.push_back({&caches_[level][static_cast<std::size_t>(instance)],
                            spec_.levels[level].hit_cycles,
                            spec_.levels[level].geometry.physically_indexed});
        }
    }
}

void MachineSim::register_counters() {
    using obs::Stability;
    counters_.levels.reserve(spec_.levels.size());
    for (const CacheLevelSpec& level : spec_.levels) {
        const std::string base = "sim.cache." + level.name;
        counters_.levels.push_back(
            {&obs::counter(base + ".hits", Stability::Stable),
             &obs::counter(base + ".misses", Stability::Stable),
             &obs::counter(base + ".evictions", Stability::Stable)});
    }
    counters_.prefetch_issued = &obs::counter("sim.prefetch.issued", Stability::Stable);
    counters_.prefetch_useful = &obs::counter("sim.prefetch.useful", Stability::Stable);
    counters_.tlb_misses = &obs::counter("sim.tlb.misses", Stability::Stable);
    counters_.page_faults = &obs::counter("sim.page.faults", Stability::Stable);
    counters_.page_translations = &obs::counter("sim.page.translations", Stability::Stable);
    counters_.contended_accesses =
        &obs::counter("sim.mem.contended_accesses", Stability::Stable);
    counters_.traverse_calls = &obs::counter("sim.traverse.calls", Stability::Stable);
    counters_.bandwidth_queries = &obs::counter("sim.bandwidth.queries", Stability::Stable);
    counters_.traverse_accesses =
        &obs::histogram("sim.traverse.accesses", Stability::Stable,
                        {1e3, 1e4, 1e5, 1e6, 1e7, 1e8});
}

void MachineSim::flush_traverse_counters(std::uint64_t demand_accesses) {
    for (std::size_t level = 0; level < caches_.size(); ++level) {
        std::uint64_t hits = 0, misses = 0, evictions = 0, useful = 0;
        for (SetAssocCache& cache : caches_[level]) {
            hits += cache.hit_count();
            misses += cache.miss_count();
            evictions += cache.eviction_count();
            useful += cache.prefetch_useful_count();
            cache.reset_counters();
        }
        counters_.levels[level].hits->add(hits);
        counters_.levels[level].misses->add(misses);
        counters_.levels[level].evictions->add(evictions);
        counters_.prefetch_useful->add(useful);
    }
    std::uint64_t tlb_misses = 0;
    for (SetAssocCache& tlb : tlbs_) {
        tlb_misses += tlb.miss_count();
        tlb.reset_counters();
    }
    counters_.tlb_misses->add(tlb_misses);
    // The mapper is recreated at traverse start, so its totals are this
    // traverse's page-map faults. Translations are tallied logically (one
    // per demand access plus one per prefetch fill) rather than read from
    // the mapper: the batched engine answers most translations from its
    // page caches without a mapper call, and the counter must not depend
    // on which engine ran.
    counters_.page_faults->add(mapper_->mapped_pages());
    counters_.page_translations->add(tally_translations_);
    counters_.prefetch_issued->add(tally_prefetch_issued_);
    counters_.contended_accesses->add(tally_contended_);
    tally_translations_ = 0;
    tally_prefetch_issued_ = 0;
    tally_contended_ = 0;
    counters_.traverse_calls->increment();
    counters_.traverse_accesses->observe(static_cast<double>(demand_accesses));
}

void MachineSim::reset_microarchitecture(Bytes array_bytes, bool fresh_placement) {
    for (auto& level : caches_)
        for (SetAssocCache& cache : level) cache.invalidate_all();
    for (StreamPrefetcher& prefetcher : prefetchers_) prefetcher.reset();
    for (SetAssocCache& tlb : tlbs_) tlb.invalidate_all();
    // Reseed the mapper deterministically: per run for fresh allocations,
    // per array size for static buffers (so a reference run and the pair
    // runs that are compared against it see identical placements).
    ++run_counter_;
    const std::uint64_t salt = fresh_placement ? run_counter_ : array_bytes;
    const std::uint64_t frames = (16 * GiB) / spec_.page_size;
    mapper_ = std::make_unique<PageMapper>(spec_.page_policy, spec_.page_size, frames,
                                           spec_.page_colors(),
                                           spec_.seed ^ (salt * 0x9e3779b97f4a7c15ULL));
    build_resolved_paths();
}

void MachineSim::fill_for_prefetch(CoreId core, std::uint64_t vaddr) {
    ++tally_translations_;
    const std::uint64_t paddr = mapper_->translate(vaddr);
    for (std::size_t level = 0; level < caches_.size(); ++level) {
        const int instance = instance_of_[level][static_cast<std::size_t>(core)];
        if (instance < 0) continue;
        const bool physical = spec_.levels[level].geometry.physically_indexed;
        caches_[level][static_cast<std::size_t>(instance)].prefetch_fill(physical ? paddr : vaddr);
    }
}

Cycles MachineSim::access_cost(CoreId core, std::uint64_t vaddr, double latency_mult) {
    ++total_accesses_;
    ++tally_translations_;

    // Prefetcher observes the demand stream and may pull lines in ahead.
    std::uint64_t prefetch_addrs[8];
    SERVET_CHECK(spec_.prefetcher.degree <= 8);
    const int n_prefetch =
        prefetchers_[static_cast<std::size_t>(core)].observe(vaddr, prefetch_addrs);

    // Translation first: a TLB miss pays the page walk regardless of where
    // the data itself hits.
    Cycles tlb_penalty = 0;
    if (!tlbs_.empty() && !tlbs_[static_cast<std::size_t>(core)].access(vaddr))
        tlb_penalty = spec_.tlb.miss_cycles;

    const std::uint64_t paddr = mapper_->translate(vaddr);
    Cycles cost = -1;
    for (std::size_t level = 0; level < caches_.size(); ++level) {
        const int instance = instance_of_[level][static_cast<std::size_t>(core)];
        SERVET_CHECK_MSG(instance >= 0, "core not covered by a cache instance");
        const bool physical = spec_.levels[level].geometry.physically_indexed;
        const bool hit =
            caches_[level][static_cast<std::size_t>(instance)].access(physical ? paddr : vaddr);
        if (hit) {
            cost = spec_.levels[level].hit_cycles;
            break;
        }
    }
    if (cost < 0) {
        cost = spec_.memory.latency_cycles * latency_mult;
        if (latency_mult > 1.0) ++tally_contended_;  // bus-queueing stall
    }

    tally_prefetch_issued_ += static_cast<std::uint64_t>(n_prefetch);
    for (int p = 0; p < n_prefetch; ++p) fill_for_prefetch(core, prefetch_addrs[p]);
    return cost + tlb_penalty;
}

void MachineSim::reference_pass(const std::vector<CoreId>& cores,
                                const std::vector<std::uint64_t>& bases, const AccessRun& run,
                                const std::vector<double>& latency_mult,
                                std::vector<Cycles>* totals) {
    for (std::uint64_t k = 0; k < run.count; ++k) {
        const std::uint64_t offset = run.address(k);
        for (std::size_t i = 0; i < cores.size(); ++i) {
            const Cycles cost = access_cost(cores[i], bases[i] + offset, latency_mult[i]);
            if (totals != nullptr) (*totals)[i] += cost;
        }
    }
}

inline void MachineSim::batched_fill(CoreRun& run, std::uint64_t vaddr) {
    const std::uint64_t vpage = vaddr >> page_shift_;
    std::uint64_t paddr;
    if (vpage == run.fill_page) {
        paddr = run.fill_frame_base | (vaddr & page_mask_);
    } else {
        paddr = mapper_->translate(vaddr);
        run.fill_page = vpage;
        run.fill_frame_base = paddr & ~page_mask_;
    }
    for (std::size_t l = 0; l < run.path_len; ++l)
        run.path[l].cache->prefetch_fill(run.path[l].physically_indexed ? paddr : vaddr);
}

inline Cycles MachineSim::batched_access(CoreRun& run, std::uint64_t vaddr,
                                         std::uint64_t index) {
    // Translation. Consecutive demand accesses to the same page cannot
    // change this core's TLB outcome (nothing else touches its TLB in
    // between, and prefetch fills never do), so the TLB and mapper are
    // consulted only on a page crossing.
    Cycles tlb_penalty = 0;
    const std::uint64_t vpage = vaddr >> page_shift_;
    std::uint64_t paddr;
    if (vpage == run.demand_page) {
        paddr = run.demand_frame_base | (vaddr & page_mask_);
    } else {
        if (run.tlb != nullptr && !run.tlb->access(vaddr)) tlb_penalty = spec_.tlb.miss_cycles;
        paddr = mapper_->translate(vaddr);
        run.demand_page = vpage;
        run.demand_frame_base = paddr & ~page_mask_;
    }

    Cycles cost = -1;
    for (std::size_t l = 0; l < run.path_len; ++l) {
        if (run.path[l].cache->access(run.path[l].physically_indexed ? paddr : vaddr)) {
            cost = run.path[l].hit_cycles;
            break;
        }
    }
    if (cost < 0) {
        cost = spec_.memory.latency_cycles * run.latency_mult;
        if (run.latency_mult > 1.0) ++tally_contended_;  // bus-queueing stall
    }

    // Prefetch emission follows the run plan; fills land after the demand
    // lookup, exactly where the scalar oracle issues them.
    const bool emits = (index == 0) ? run.plan.first_emits : (index >= run.plan.emit_from);
    if (emits) {
        const std::int64_t pf_stride =
            (index == 0) ? run.plan.first_stride : run.plan.emit_stride;
        for (int d = 1; d <= run.degree; ++d) {
            const std::uint64_t pf_addr = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(vaddr) + static_cast<std::int64_t>(d) * pf_stride);
            batched_fill(run, pf_addr);
        }
    }
    return cost + tlb_penalty;
}

template <bool kMeasure>
void MachineSim::batched_pass(std::vector<CoreRun>& runs, std::int64_t stride,
                              std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) {
        for (CoreRun& run : runs) {
            const Cycles cost = batched_access(run, run.cursor, k);
            run.cursor += static_cast<std::uint64_t>(stride);
            if constexpr (kMeasure) run.total += cost;
        }
    }
}

TraversalResult MachineSim::run_traversal(const std::vector<CoreId>& cores, Bytes array_bytes,
                                          Bytes stride, int measure_passes,
                                          bool fresh_placement, bool batched) {
    SERVET_TRACE_SPAN("sim/traverse");
    SERVET_CHECK(!cores.empty());
    SERVET_CHECK(array_bytes > 0 && stride > 0 && measure_passes > 0);
    for (CoreId c : cores) SERVET_CHECK(c >= 0 && c < spec_.n_cores);
    // Each core needs its own array, prefetcher stream, and page caches;
    // listing a core twice would silently alias them.
    for (std::size_t i = 0; i < cores.size(); ++i)
        for (std::size_t j = i + 1; j < cores.size(); ++j)
            SERVET_CHECK_MSG(cores[i] != cores[j], "traverse cores must be distinct");

    const std::uint64_t accesses_before = total_accesses_;
    reset_microarchitecture(array_bytes, fresh_placement);

    // Address ranges keyed by core id (not list position), so a core's
    // static buffer lands on the same pages whether it runs solo or paired.
    const std::size_t n_cores = cores.size();
    std::vector<std::uint64_t> base(n_cores);
    for (std::size_t i = 0; i < n_cores; ++i)
        base[i] = (static_cast<std::uint64_t>(cores[i]) + 1) << kCoreSpaceBits;

    const std::vector<double> latency_mult = memory_.latency_multipliers(cores);

    const Bytes line = spec_.levels.empty() ? 64 : spec_.levels.front().geometry.line_size;
    // Runs are planned as offsets from zero; each core adds its own base.
    const AccessStream stream = AccessStream::plan(0, array_bytes, stride, line);

    std::vector<Cycles> total(n_cores, 0.0);
    if (batched) {
        std::vector<CoreRun> runs(n_cores);
        for (std::size_t i = 0; i < n_cores; ++i) {
            const std::size_t core = static_cast<std::size_t>(cores[i]);
            runs[i].base = base[i];
            runs[i].latency_mult = latency_mult[i];
            runs[i].path = resolved_paths_[core].data();
            runs[i].path_len = resolved_paths_[core].size();
            runs[i].tlb = tlbs_.empty() ? nullptr : &tlbs_[core];
            runs[i].prefetcher = &prefetchers_[core];
            runs[i].degree = prefetchers_[core].spec().degree;
        }
        const auto begin_run = [this](std::vector<CoreRun>& rs, const AccessRun& r) {
            for (CoreRun& run : rs) {
                run.cursor = run.base + r.base;
                run.plan = run.prefetcher->plan_run(run.cursor, r.stride, r.count);
                // The batched inner loop keeps no per-access tallies; the
                // whole pass is accounted here in closed form (one logical
                // translation per demand access and per prefetch fill,
                // matching what the scalar oracle counts as it goes).
                const std::uint64_t issued =
                    emitting_accesses(run.plan, r.count) *
                    static_cast<std::uint64_t>(run.degree);
                total_accesses_ += r.count;
                tally_translations_ += r.count + issued;
                tally_prefetch_issued_ += issued;
            }
        };
        begin_run(runs, stream.init);
        batched_pass<false>(runs, stream.init.stride, stream.init.count);
        for (int pass = -1; pass < measure_passes; ++pass) {  // pass -1 = warm-up
            begin_run(runs, stream.measure);
            if (pass >= 0)
                batched_pass<true>(runs, stream.measure.stride, stream.measure.count);
            else
                batched_pass<false>(runs, stream.measure.stride, stream.measure.count);
        }
        for (std::size_t i = 0; i < n_cores; ++i) total[i] = runs[i].total;
    } else {
        // Initialization: the benchmark's setup loop writes the stride into
        // every element, touching each line sequentially. Interleaved across
        // cores like the measured phase.
        reference_pass(cores, base, stream.init, latency_mult, nullptr);
        for (int pass = -1; pass < measure_passes; ++pass)  // pass -1 = warm-up
            reference_pass(cores, base, stream.measure, latency_mult,
                           pass >= 0 ? &total : nullptr);
    }

    flush_traverse_counters(total_accesses_ - accesses_before);

    TraversalResult result;
    result.accesses_per_core =
        stream.measure.count * static_cast<std::uint64_t>(measure_passes);
    result.cycles_per_access.resize(n_cores);
    for (std::size_t i = 0; i < n_cores; ++i)
        result.cycles_per_access[i] = total[i] / static_cast<double>(result.accesses_per_core);
    return result;
}

TraversalResult MachineSim::traverse(const std::vector<CoreId>& cores, Bytes array_bytes,
                                     Bytes stride, int measure_passes, bool fresh_placement) {
    return run_traversal(cores, array_bytes, stride, measure_passes, fresh_placement,
                         /*batched=*/true);
}

TraversalResult MachineSim::traverse_reference(const std::vector<CoreId>& cores,
                                               Bytes array_bytes, Bytes stride,
                                               int measure_passes, bool fresh_placement) {
    return run_traversal(cores, array_bytes, stride, measure_passes, fresh_placement,
                         /*batched=*/false);
}

Cycles MachineSim::traverse_one(CoreId core, Bytes array_bytes, Bytes stride,
                                int measure_passes, bool fresh_placement) {
    return traverse({core}, array_bytes, stride, measure_passes, fresh_placement)
        .cycles_per_access.front();
}

BytesPerSecond MachineSim::copy_bandwidth(CoreId core, const std::vector<CoreId>& active,
                                          Bytes array_bytes) const {
    SERVET_CHECK(core >= 0 && core < spec_.n_cores);
    counters_.bandwidth_queries->increment();

    // A copy working set that fits in some cache level streams from that
    // cache and sees no memory contention. Scale bandwidth by how close the
    // level is to the core (L1 fastest). Source + destination arrays.
    const Bytes working_set = 2 * array_bytes;
    for (std::size_t level = 0; level < spec_.levels.size(); ++level) {
        if (working_set <= spec_.levels[level].geometry.size) {
            const double boost = 4.0 / static_cast<double>(level + 1);
            return spec_.memory.single_core_bandwidth * std::max(boost, 1.5);
        }
    }
    return memory_.stream_bandwidth(core, active);
}

}  // namespace servet::sim
