#include "sim/prefetcher.hpp"

#include <algorithm>
#include <cstdlib>

namespace servet::sim {

int StreamPrefetcher::observe(std::uint64_t vaddr, std::uint64_t* out) {
    if (!spec_.enabled) return 0;

    int emitted = 0;
    if (has_last_) {
        const std::int64_t stride =
            static_cast<std::int64_t>(vaddr) - static_cast<std::int64_t>(last_addr_);
        const std::uint64_t magnitude = static_cast<std::uint64_t>(std::llabs(stride));
        if (stride != 0 && magnitude <= spec_.max_stride && stride == last_stride_) {
            ++streak_;
        } else {
            last_stride_ = (stride != 0 && magnitude <= spec_.max_stride) ? stride : 0;
            streak_ = last_stride_ != 0 ? 1 : 0;
        }
        if (streaming()) {
            for (int d = 1; d <= spec_.degree; ++d) {
                out[emitted++] =
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(vaddr) + d * last_stride_);
            }
        }
    }
    last_addr_ = vaddr;
    has_last_ = true;
    return emitted;
}

StreamRunPlan StreamPrefetcher::plan_run(std::uint64_t start, std::int64_t stride,
                                         std::uint64_t count) {
    StreamRunPlan plan;
    plan.emit_from = count;
    // Disabled observe() is a pure no-op (it does not even record the
    // address), so a disabled plan leaves the state alone too.
    if (!spec_.enabled || count == 0) return plan;

    // Access 0 follows the generic transition: its incoming stride is the
    // boundary step from whatever access preceded this run.
    if (has_last_) {
        const std::int64_t step =
            static_cast<std::int64_t>(start) - static_cast<std::int64_t>(last_addr_);
        const std::uint64_t magnitude = static_cast<std::uint64_t>(std::llabs(step));
        const bool trackable = step != 0 && magnitude <= spec_.max_stride;
        if (trackable && step == last_stride_) {
            ++streak_;
        } else {
            last_stride_ = trackable ? step : 0;
            streak_ = last_stride_ != 0 ? 1 : 0;
        }
        if (streaming()) {
            plan.first_emits = true;
            plan.first_stride = last_stride_;
        }
    }
    has_last_ = true;

    // Accesses 1..count-1 all step by `stride`, so the streak recurrence is
    // closed-form: a trackable stride scores streak_at_1 + (i - 1) at
    // access i and emits once that reaches the trigger.
    if (count >= 2) {
        const std::uint64_t magnitude = static_cast<std::uint64_t>(std::llabs(stride));
        const bool trackable = stride != 0 && magnitude <= spec_.max_stride;
        if (trackable) {
            const int streak_at_1 = (stride == last_stride_) ? streak_ + 1 : 1;
            last_stride_ = stride;
            plan.emit_stride = stride;
            const std::uint64_t first = 1 + static_cast<std::uint64_t>(std::max(
                                                0, spec_.trigger_streak - streak_at_1));
            plan.emit_from = std::min(first, count);
            streak_ = streak_at_1 + static_cast<int>(count - 2);
        } else {
            last_stride_ = 0;
            streak_ = 0;
            plan.emit_stride = 0;
            // A non-positive trigger keeps streaming() true even at streak
            // zero (observe() would emit degree copies of each address).
            if (spec_.trigger_streak <= 0) plan.emit_from = 1;
        }
    }
    last_addr_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(start) +
                                            static_cast<std::int64_t>(count - 1) * stride);
    return plan;
}

void StreamPrefetcher::reset() {
    last_addr_ = 0;
    last_stride_ = 0;
    streak_ = 0;
    has_last_ = false;
}

}  // namespace servet::sim
