#include "sim/prefetcher.hpp"

#include <cstdlib>

namespace servet::sim {

int StreamPrefetcher::observe(std::uint64_t vaddr, std::uint64_t* out) {
    if (!spec_.enabled) return 0;

    int emitted = 0;
    if (has_last_) {
        const std::int64_t stride =
            static_cast<std::int64_t>(vaddr) - static_cast<std::int64_t>(last_addr_);
        const std::uint64_t magnitude = static_cast<std::uint64_t>(std::llabs(stride));
        if (stride != 0 && magnitude <= spec_.max_stride && stride == last_stride_) {
            ++streak_;
        } else {
            last_stride_ = (stride != 0 && magnitude <= spec_.max_stride) ? stride : 0;
            streak_ = last_stride_ != 0 ? 1 : 0;
        }
        if (streaming()) {
            for (int d = 1; d <= spec_.degree; ++d) {
                out[emitted++] =
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(vaddr) + d * last_stride_);
            }
        }
    }
    last_addr_ = vaddr;
    has_last_ = true;
    return emitted;
}

void StreamPrefetcher::reset() {
    last_addr_ = 0;
    last_stride_ = 0;
    streak_ = 0;
    has_last_ = false;
}

}  // namespace servet::sim
