// Virtual→physical page mapping. This is the mechanism behind the paper's
// central measurement problem (Section III-A2): L2/L3 caches are physically
// indexed, and an OS without page coloring backs contiguous virtual pages
// with arbitrary physical frames, smearing the miss-rate transition of a
// cache-size sweep across a wide range of array sizes. The simulator
// reproduces that honestly: frames are drawn uniformly at random (no two
// virtual pages share a frame), or — when modelling a page-coloring OS —
// chosen so the frame's cache color matches the virtual page's.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "base/rng.hpp"
#include "base/types.hpp"

namespace servet::sim {

enum class PagePolicy {
    Random,    ///< uniform random frames (Linux-like, no coloring)
    Coloring,  ///< frame color == virtual color (the OSs of Section III-A2)
};

class PageMapper {
  public:
    /// `physical_pages` bounds the frame pool; keep it much larger than any
    /// working set so random placement stays near-uniform. `colors` is the
    /// number of page colors honoured by a Coloring policy (page sets of the
    /// largest physically indexed cache).
    PageMapper(PagePolicy policy, Bytes page_size, std::uint64_t physical_pages,
               std::uint64_t colors, std::uint64_t seed);

    /// Translate a virtual byte address to a physical byte address. Frames
    /// are assigned lazily on first touch and remain stable thereafter.
    [[nodiscard]] std::uint64_t translate(std::uint64_t vaddr);

    /// Physical frame backing a virtual page number. Deterministic in
    /// (seed, vpage) — independent of the order pages are touched, except
    /// on rare frame collisions.
    [[nodiscard]] std::uint64_t frame_of(std::uint64_t vpage);

    /// Forget all mappings (a fresh process image).
    void reset();

    [[nodiscard]] Bytes page_size() const { return page_size_; }
    [[nodiscard]] std::uint64_t page_shift() const { return page_shift_; }
    [[nodiscard]] PagePolicy policy() const { return policy_; }
    [[nodiscard]] std::size_t mapped_pages() const { return map_.size(); }
    /// translate() calls since construction/reset. mapped_pages() is the
    /// fault count (lazy first-touch assignments) of the same window.
    [[nodiscard]] std::uint64_t translation_count() const { return translations_; }

  private:
    PagePolicy policy_;
    Bytes page_size_;
    std::uint64_t page_shift_;
    std::uint64_t physical_pages_;
    std::uint64_t colors_;
    std::uint64_t seed_;
    std::unordered_map<std::uint64_t, std::uint64_t> map_;
    std::unordered_set<std::uint64_t> used_frames_;
    std::uint64_t translations_ = 0;
};

}  // namespace servet::sim
