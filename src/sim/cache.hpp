// Set-associative LRU cache model. One instance models one physical cache
// (an L1, or one shared L2 serving a pair of cores, ...). The simulator
// builds one instance per cache in the machine and pushes the benchmark's
// access trace through them, so capacity misses, conflict misses from
// physical indexing, and inter-core thrashing in shared caches all emerge
// from the same mechanism that produces them on hardware.
//
// Replacement is age-stamp LRU: every way carries a monotonically
// increasing stamp rather than living in a recency-ordered list, so a hit
// is one store instead of a reorder. The batched engine (sim/engine.hpp)
// leans on that: access() and prefetch_fill() are defined inline here so
// the line-stream inner loop compiles down to a tag scan and a stamp
// write with no call overhead. State is stored structure-of-arrays (tags,
// stamps, and prefetch bits in separate set-major vectors) so the tag
// scan of an 8-way set reads one cache line of the host machine, not
// three.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.hpp"
#include "base/types.hpp"

namespace servet::sim {

/// Static shape of a cache. Set counts need not be powers of two (real
/// LLCs like the 16-way 12MB Dunnington L3 have 3*2^k sets); indexing is
/// line % sets.
struct CacheGeometry {
    Bytes size = 0;
    Bytes line_size = 64;
    int associativity = 8;
    bool physically_indexed = false;

    [[nodiscard]] std::uint64_t set_count() const {
        const Bytes way_capacity = line_size * static_cast<Bytes>(associativity);
        SERVET_CHECK_MSG(way_capacity > 0 && size / way_capacity >= 1,
                         "degenerate cache geometry: zero sets");
        return size / way_capacity;
    }

    /// Page sets of Section III-A2: groups of sets that can receive data
    /// from one page. CS / (K * PS). Zero is a legal answer (a cache whose
    /// way capacity is below one page has no whole page set); only a zero
    /// divisor is degenerate.
    [[nodiscard]] std::uint64_t page_set_count(Bytes page_size) const {
        const Bytes way_pages = static_cast<Bytes>(associativity) * page_size;
        SERVET_CHECK_MSG(way_pages > 0, "degenerate cache geometry: zero-byte ways");
        return size / way_pages;
    }

    /// Line size a power of two, size an exact multiple of way capacity,
    /// and at least one set. Never aborts: degenerate geometries (the ones
    /// set_count() refuses) report false here.
    [[nodiscard]] bool valid() const;
};

/// LRU set-associative cache over line addresses.
class SetAssocCache {
  public:
    explicit SetAssocCache(const CacheGeometry& geometry);

    /// Look up the line containing `addr` (a byte address in whichever
    /// address space this cache is indexed by); on miss, fill it, evicting
    /// the LRU way. Returns true on hit.
    bool access(std::uint64_t addr) {
        const std::uint64_t line = addr >> line_shift_;
        const std::uint64_t tag = tag_of(line);
        const std::uint64_t base = set_index(line) * static_cast<std::uint64_t>(assoc_);
        ++clock_;
        const int hit_w = scan(base, tag);
        if (hit_w >= 0) {
            const std::uint64_t i = base + static_cast<std::uint64_t>(hit_w);
            stamps_[i] = clock_;
            ++hits_;
            if (prefetched_[i] != 0) {
                ++prefetch_useful_;
                prefetched_[i] = 0;
            }
            return true;
        }
        ++misses_;
        const std::uint64_t v = victim_in(base);
        if (tags_[v] != kInvalidTag) ++evictions_;
        tags_[v] = tag;
        stamps_[v] = clock_;
        prefetched_[v] = 0;
        return false;
    }

    /// Fill without counting a demand access (prefetch path). Touches LRU
    /// state like a normal fill.
    void prefetch_fill(std::uint64_t addr) {
        const std::uint64_t line = addr >> line_shift_;
        const std::uint64_t tag = tag_of(line);
        const std::uint64_t base = set_index(line) * static_cast<std::uint64_t>(assoc_);
        ++clock_;
        const int hit_w = scan(base, tag);
        if (hit_w >= 0) {
            stamps_[base + static_cast<std::uint64_t>(hit_w)] = clock_;
            return;
        }
        const std::uint64_t v = victim_in(base);
        if (tags_[v] != kInvalidTag) ++evictions_;
        tags_[v] = tag;
        stamps_[v] = clock_;
        prefetched_[v] = 1;
        ++prefetch_fills_;
    }

    /// True iff the line is currently resident (no LRU update, no fill).
    [[nodiscard]] bool contains(std::uint64_t addr) const;

    void invalidate_all();

    [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }
    [[nodiscard]] std::uint64_t hit_count() const { return hits_; }
    [[nodiscard]] std::uint64_t miss_count() const { return misses_; }
    /// Valid lines displaced by demand or prefetch fills.
    [[nodiscard]] std::uint64_t eviction_count() const { return evictions_; }
    /// Lines installed by prefetch_fill (cold installs, not LRU touches).
    [[nodiscard]] std::uint64_t prefetch_fill_count() const { return prefetch_fills_; }
    /// Demand hits on lines a prefetch installed that no demand access had
    /// touched yet — the prefetcher's useful work.
    [[nodiscard]] std::uint64_t prefetch_useful_count() const { return prefetch_useful_; }
    void reset_counters() {
        hits_ = misses_ = evictions_ = prefetch_fills_ = prefetch_useful_ = 0;
    }

  private:
    static constexpr std::uint64_t kInvalidTag = ~0ULL;

    // Most real geometries have power-of-two set counts; that case gets a
    // shift/mask instead of div/mod, which matters because the traversal
    // engines do several set/tag computations per simulated access.
    [[nodiscard]] std::uint64_t set_index(std::uint64_t line) const {
        return sets_pow2_ ? (line & set_mask_) : (line % sets_);
    }
    [[nodiscard]] std::uint64_t tag_of(std::uint64_t line) const {
        return sets_pow2_ ? (line >> set_shift_) : (line / sets_);
    }
    /// Way index holding `tag` in the set starting at flat index `base`,
    /// or -1. A line lives in at most one way (fills only install absent
    /// lines), so the scan has no early exit: a branch-free full pass over
    /// the set's tags compiles to straight-line compare+cmov when the trip
    /// count is a compile-time constant, which the dispatch below arranges
    /// for the associativities real cache levels use. Large fully
    /// associative shapes (TLBs) take the generic loop; their scans are
    /// memory-bound either way.
    template <int kAssoc>
    [[nodiscard]] static int scan_fixed(const std::uint64_t* tags, std::uint64_t tag) {
        int hit_w = -1;
        for (int w = 0; w < kAssoc; ++w) hit_w = tags[w] == tag ? w : hit_w;
        return hit_w;
    }
    [[nodiscard]] int scan(std::uint64_t base, std::uint64_t tag) const {
        const std::uint64_t* tags = tags_.data() + base;
        switch (assoc_) {
            case 4: return scan_fixed<4>(tags, tag);
            case 8: return scan_fixed<8>(tags, tag);
            case 12: return scan_fixed<12>(tags, tag);
            case 16: return scan_fixed<16>(tags, tag);
            default: break;
        }
        int hit_w = -1;
        for (int w = 0; w < assoc_; ++w) hit_w = tags[w] == tag ? w : hit_w;
        return hit_w;
    }

    /// Index of the way to replace in the set starting at `base`: the
    /// first free way past way 0 if any, else the smallest stamp (way 0
    /// included, ties keep the lowest index — and a free way 0 wins the
    /// stamp comparison because free ways carry stamp 0).
    std::uint64_t victim_in(std::uint64_t base) const {
        std::uint64_t lru = base;
        for (int w = 1; w < assoc_; ++w) {
            const std::uint64_t i = base + static_cast<std::uint64_t>(w);
            if (tags_[i] == kInvalidTag) return i;  // free way first
            if (stamps_[i] < stamps_[lru]) lru = i;
        }
        return lru;
    }

    CacheGeometry geometry_;
    std::uint64_t line_shift_;
    std::uint64_t sets_;
    int assoc_;
    bool sets_pow2_;
    std::uint64_t set_shift_ = 0;  // valid when sets_pow2_
    std::uint64_t set_mask_ = 0;   // valid when sets_pow2_
    // Set-major structure-of-arrays: entry set * assoc + way of each
    // vector describes one way. tags_ holds kInvalidTag for free ways,
    // stamps_ the LRU age stamp (larger = more recent, 0 = never used),
    // prefetched_ a 0/1 "installed by prefetch, no demand hit yet" flag.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> stamps_;
    std::vector<std::uint8_t> prefetched_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t prefetch_fills_ = 0;
    std::uint64_t prefetch_useful_ = 0;
};

}  // namespace servet::sim
