// Set-associative LRU cache model. One instance models one physical cache
// (an L1, or one shared L2 serving a pair of cores, ...). The simulator
// builds one instance per cache in the machine and pushes the benchmark's
// access trace through them, so capacity misses, conflict misses from
// physical indexing, and inter-core thrashing in shared caches all emerge
// from the same mechanism that produces them on hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace servet::sim {

/// Static shape of a cache. Set counts need not be powers of two (real
/// LLCs like the 16-way 12MB Dunnington L3 have 3*2^k sets); indexing is
/// line % sets.
struct CacheGeometry {
    Bytes size = 0;
    Bytes line_size = 64;
    int associativity = 8;
    bool physically_indexed = false;

    [[nodiscard]] std::uint64_t set_count() const {
        return size / (line_size * static_cast<Bytes>(associativity));
    }

    /// Page sets of Section III-A2: groups of sets that can receive data
    /// from one page. CS / (K * PS).
    [[nodiscard]] std::uint64_t page_set_count(Bytes page_size) const {
        return size / (static_cast<Bytes>(associativity) * page_size);
    }

    /// Line size a power of two, size an exact multiple of way capacity,
    /// and at least one set.
    [[nodiscard]] bool valid() const;
};

/// LRU set-associative cache over line addresses.
class SetAssocCache {
  public:
    explicit SetAssocCache(const CacheGeometry& geometry);

    /// Look up the line containing `addr` (a byte address in whichever
    /// address space this cache is indexed by); on miss, fill it, evicting
    /// the LRU way. Returns true on hit.
    bool access(std::uint64_t addr);

    /// Fill without counting a demand access (prefetch path). Touches LRU
    /// state like a normal fill.
    void prefetch_fill(std::uint64_t addr);

    /// True iff the line is currently resident (no LRU update, no fill).
    [[nodiscard]] bool contains(std::uint64_t addr) const;

    void invalidate_all();

    [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }
    [[nodiscard]] std::uint64_t hit_count() const { return hits_; }
    [[nodiscard]] std::uint64_t miss_count() const { return misses_; }
    /// Valid lines displaced by demand or prefetch fills.
    [[nodiscard]] std::uint64_t eviction_count() const { return evictions_; }
    /// Lines installed by prefetch_fill (cold installs, not LRU touches).
    [[nodiscard]] std::uint64_t prefetch_fill_count() const { return prefetch_fills_; }
    /// Demand hits on lines a prefetch installed that no demand access had
    /// touched yet — the prefetcher's useful work.
    [[nodiscard]] std::uint64_t prefetch_useful_count() const { return prefetch_useful_; }
    void reset_counters() {
        hits_ = misses_ = evictions_ = prefetch_fills_ = prefetch_useful_ = 0;
    }

  private:
    struct Way {
        std::uint64_t tag = kInvalidTag;
        std::uint64_t stamp = 0;  // larger = more recently used
        bool prefetched = false;  // installed by prefetch, no demand hit yet
    };
    static constexpr std::uint64_t kInvalidTag = ~0ULL;

    [[nodiscard]] std::uint64_t set_index(std::uint64_t line) const { return line % sets_; }
    [[nodiscard]] std::uint64_t tag_of(std::uint64_t line) const { return line / sets_; }
    Way* find(std::uint64_t line);
    Way& victim(std::uint64_t set);

    CacheGeometry geometry_;
    std::uint64_t line_shift_;
    std::uint64_t sets_;
    std::vector<Way> ways_;  // set-major layout: ways_[set * assoc + way]
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t prefetch_fills_ = 0;
    std::uint64_t prefetch_useful_ = 0;
};

}  // namespace servet::sim
