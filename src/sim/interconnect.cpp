#include "sim/interconnect.hpp"

#include <cmath>

#include "base/check.hpp"

namespace servet::sim {

InterconnectModel::InterconnectModel(const MachineSpec& spec) : spec_(&spec) {
    SERVET_CHECK_MSG(!spec.comm_layers.empty() || spec.n_cores == 1,
                     "interconnect model needs comm layers");
}

const CommLayerSpec& InterconnectModel::layer(int index) const {
    SERVET_CHECK(index >= 0 && index < layer_count());
    return spec_->comm_layers[static_cast<std::size_t>(index)];
}

Seconds InterconnectModel::latency(CorePair pair, Bytes size) const {
    const CommLayerSpec& l = layer(layer_of(pair));
    Seconds t = l.base_latency + static_cast<double>(size) / l.bandwidth;
    if (size > l.eager_threshold) t += l.rendezvous_extra;
    return t;
}

Seconds InterconnectModel::latency_concurrent(CorePair pair, Bytes size, int concurrent) const {
    SERVET_CHECK(concurrent >= 1);
    const CommLayerSpec& l = layer(layer_of(pair));
    return latency(pair, size) * std::pow(static_cast<double>(concurrent),
                                          l.concurrency_exponent);
}

}  // namespace servet::sim
