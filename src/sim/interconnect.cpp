#include "sim/interconnect.hpp"

#include <cmath>

#include "base/check.hpp"

namespace servet::sim {

InterconnectModel::InterconnectModel(const MachineSpec& spec) : spec_(&spec) {
    SERVET_CHECK_MSG(!spec.comm_layers.empty() || spec.n_cores == 1 ||
                         (spec.topology.enabled() && spec.cores_per_node == 1),
                     "interconnect model needs comm layers");
    if (spec.topology.enabled()) topology_.emplace(spec.topology);
}

bool InterconnectModel::routed(CorePair pair) const {
    return topology_ && spec_->node_of(pair.a) != spec_->node_of(pair.b);
}

int InterconnectModel::layer_of(CorePair pair) const {
    if (routed(pair))
        return static_cast<int>(spec_->comm_layers.size()) +
               topology_->route_class(spec_->node_of(pair.a), spec_->node_of(pair.b)).tier;
    return spec_->comm_layer_of(pair);
}

const CommLayerSpec& InterconnectModel::layer(int index) const {
    SERVET_CHECK(index >= 0 && index < static_cast<int>(spec_->comm_layers.size()));
    return spec_->comm_layers[static_cast<std::size_t>(index)];
}

Seconds InterconnectModel::latency(CorePair pair, Bytes size) const {
    if (routed(pair))
        return topology_->latency(spec_->node_of(pair.a), spec_->node_of(pair.b), size);
    const CommLayerSpec& l = layer(spec_->comm_layer_of(pair));
    Seconds t = l.base_latency + static_cast<double>(size) / l.bandwidth;
    if (size > l.eager_threshold) t += l.rendezvous_extra;
    return t;
}

Seconds InterconnectModel::latency_concurrent(CorePair pair, Bytes size, int concurrent) const {
    SERVET_CHECK(concurrent >= 1);
    double exponent = 0.0;
    if (routed(pair)) {
        const RouteClass cls = topology_->route_class(spec_->node_of(pair.a),
                                                      spec_->node_of(pair.b));
        exponent = topology_->tier(cls.tier).congestion_exponent;
    } else {
        exponent = layer(spec_->comm_layer_of(pair)).concurrency_exponent;
    }
    return latency(pair, size) * std::pow(static_cast<double>(concurrent), exponent);
}

}  // namespace servet::sim
