#include "sim/topology.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "base/check.hpp"

namespace servet::sim {

namespace {

/// Hard cap on modeled cluster size; keeps every arity^levels / dims
/// product computation in range.
constexpr long long kMaxVertices = 1 << 22;

long long fat_tree_nodes(int arity, int levels) {
    long long n = 1;
    for (int l = 0; l < levels; ++l) {
        n *= arity;
        if (n > kMaxVertices) return -1;
    }
    return n;
}

bool power_of_two(int v) { return v >= 1 && (v & (v - 1)) == 0; }

}  // namespace

const char* topology_kind_name(TopologyKind kind) {
    switch (kind) {
        case TopologyKind::None: return "none";
        case TopologyKind::FatTree: return "fat-tree";
        case TopologyKind::Torus: return "torus";
        case TopologyKind::Dragonfly: return "dragonfly";
        case TopologyKind::Custom: return "custom";
    }
    return "none";
}

bool topology_kind_parse(const std::string& text, TopologyKind* kind) {
    for (TopologyKind k : {TopologyKind::None, TopologyKind::FatTree, TopologyKind::Torus,
                           TopologyKind::Dragonfly, TopologyKind::Custom}) {
        if (text == topology_kind_name(k)) {
            *kind = k;
            return true;
        }
    }
    return false;
}

int TopologySpec::node_count() const {
    switch (kind) {
        case TopologyKind::None: return 1;
        case TopologyKind::FatTree: {
            const long long n = fat_tree_nodes(arity, levels);
            return n < 0 ? 0 : static_cast<int>(n);
        }
        case TopologyKind::Torus: {
            long long n = 1;
            for (int d : dims) {
                if (d < 1) return 0;
                n *= d;
                if (n > kMaxVertices) return 0;
            }
            return dims.empty() ? 0 : static_cast<int>(n);
        }
        case TopologyKind::Dragonfly: {
            const long long n = static_cast<long long>(groups) * routers * nodes_per_router;
            return (n < 1 || n > kMaxVertices) ? 0 : static_cast<int>(n);
        }
        case TopologyKind::Custom: return custom_nodes;
    }
    return 0;
}

int TopologySpec::required_tiers() const {
    switch (kind) {
        case TopologyKind::None: return 0;
        case TopologyKind::FatTree: return levels;
        case TopologyKind::Torus: return 1;
        case TopologyKind::Dragonfly: return 3;
        case TopologyKind::Custom: {
            int max_tier = -1;
            for (const TopologyLink& link : links) max_tier = std::max(max_tier, link.tier);
            return max_tier + 1;
        }
    }
    return 0;
}

std::vector<std::string> TopologySpec::validate() const {
    std::vector<std::string> problems;
    const auto complain = [&](std::string text) { problems.push_back(std::move(text)); };
    if (kind == TopologyKind::None) {
        if (!tiers.empty()) complain("topology kind none cannot declare tiers");
        return problems;
    }

    switch (kind) {
        case TopologyKind::None: break;
        case TopologyKind::FatTree:
            if (!power_of_two(arity) || arity < 2)
                complain("fat-tree arity must be a power of two >= 2");
            if (levels < 1) complain("fat-tree needs at least one switch level");
            if (fat_tree_nodes(arity, levels) < 0) complain("fat-tree is too large");
            break;
        case TopologyKind::Torus:
            if (dims.size() != 2 && dims.size() != 3)
                complain("torus needs 2 or 3 dimensions");
            for (int d : dims)
                if (d < 1) complain("torus dimensions must be >= 1");
            if (node_count() == 0) complain("torus is empty or too large");
            break;
        case TopologyKind::Dragonfly:
            if (groups < 2) complain("dragonfly needs at least two groups");
            if (routers < 1) complain("dragonfly needs at least one router per group");
            if (nodes_per_router < 1)
                complain("dragonfly needs at least one node per router");
            if (node_count() == 0) complain("dragonfly is too large");
            break;
        case TopologyKind::Custom: {
            if (custom_nodes < 1) complain("custom topology needs at least one node");
            if (switch_count < 0) complain("custom switch_count must be >= 0");
            const long long vertices =
                static_cast<long long>(custom_nodes) + switch_count;
            if (vertices > kMaxVertices) complain("custom topology is too large");
            bool endpoints_ok = true;
            for (const TopologyLink& link : links) {
                if (link.a < 0 || link.a >= vertices || link.b < 0 || link.b >= vertices ||
                    link.a == link.b) {
                    complain("custom link endpoints out of range");
                    endpoints_ok = false;
                }
                if (link.tier < 0) complain("custom link tier must be >= 0");
            }
            if (endpoints_ok && custom_nodes >= 1 && vertices <= kMaxVertices) {
                // A unique route between every vertex pair requires a tree:
                // exactly vertices-1 links, no cycles, one component.
                const int vcount = static_cast<int>(vertices);
                std::vector<int> parent(static_cast<std::size_t>(vcount));
                for (std::size_t v = 0; v < parent.size(); ++v)
                    parent[v] = static_cast<int>(v);
                const auto find = [&](int v) {
                    while (parent[static_cast<std::size_t>(v)] != v) {
                        parent[static_cast<std::size_t>(v)] =
                            parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
                        v = parent[static_cast<std::size_t>(v)];
                    }
                    return v;
                };
                bool cycle = false;
                for (const TopologyLink& link : links) {
                    const int ra = find(link.a);
                    const int rb = find(link.b);
                    if (ra == rb) {
                        cycle = true;
                    } else {
                        parent[static_cast<std::size_t>(ra)] = rb;
                    }
                }
                if (cycle) {
                    complain("custom links contain a cycle");
                } else if (static_cast<int>(links.size()) != vcount - 1) {
                    complain("custom links must connect every node and switch");
                } else {
                    const int root = find(0);
                    for (int v = 1; v < vcount; ++v)
                        if (find(v) != root) {
                            complain("custom links must connect every node and switch");
                            break;
                        }
                }
            }
            break;
        }
    }

    if (!tiers.empty()) {
        if (static_cast<int>(tiers.size()) != required_tiers())
            complain("topology declares " + std::to_string(tiers.size()) + " tiers, needs " +
                     std::to_string(required_tiers()));
        for (const TopologyTier& t : tiers) {
            if (t.hop_latency < 0 || t.bandwidth <= 0)
                complain("topology tier '" + t.name + "': bad latency/bandwidth");
            if (t.congestion_exponent < 0)
                complain("topology tier '" + t.name + "': negative congestion exponent");
        }
    }
    return problems;
}

Topology::Topology(TopologySpec spec) : spec_(std::move(spec)) {
    SERVET_CHECK_MSG(spec_.enabled(), "Topology needs an enabled spec");
    const std::vector<std::string> problems = spec_.validate();
    if (!problems.empty())
        SERVET_CHECK_MSG(false, ("invalid topology: " + problems.front()).c_str());
    if (spec_.kind == TopologyKind::Custom) {
        custom_adjacency_.resize(static_cast<std::size_t>(vertex_count()));
        for (const TopologyLink& link : spec_.links) {
            custom_adjacency_[static_cast<std::size_t>(link.a)].emplace_back(link.b, link.tier);
            custom_adjacency_[static_cast<std::size_t>(link.b)].emplace_back(link.a, link.tier);
        }
    }
}

int Topology::vertex_count() const {
    const int nodes = node_count();
    switch (spec_.kind) {
        case TopologyKind::None: return nodes;
        case TopologyKind::FatTree: {
            // Level l (1-based) has arity^(levels-l) switches.
            int switches = 0;
            int count = 1;
            for (int l = spec_.levels; l >= 1; --l) {
                switches += count;
                count *= spec_.arity;
            }
            return nodes + switches;
        }
        case TopologyKind::Torus: return nodes;
        case TopologyKind::Dragonfly: return nodes + spec_.groups * spec_.routers;
        case TopologyKind::Custom: return nodes + spec_.switch_count;
    }
    return nodes;
}

namespace {

/// First vertex id of fat-tree switch level l (1-based): nodes come
/// first, then level 1 switches, then level 2, ...
int fat_tree_level_base(int nodes, int arity, int level) {
    int base = nodes;
    int count = nodes / arity;  // level 1 switch count
    for (int l = 1; l < level; ++l) {
        base += count;
        count /= arity;
    }
    return base;
}

}  // namespace

std::vector<TopologyLink> Topology::links() const {
    std::vector<TopologyLink> result;
    switch (spec_.kind) {
        case TopologyKind::None: break;
        case TopologyKind::FatTree: {
            const int nodes = node_count();
            const int k = spec_.arity;
            // Tier l-1 connects level l-1 entities to their level l parent.
            int child_base = 0;
            int child_count = nodes;
            for (int l = 1; l <= spec_.levels; ++l) {
                const int parent_base = fat_tree_level_base(nodes, k, l);
                for (int c = 0; c < child_count; ++c)
                    result.push_back({child_base + c, parent_base + c / k, l - 1});
                child_base = parent_base;
                child_count /= k;
            }
            break;
        }
        case TopologyKind::Torus: {
            const int nodes = node_count();
            std::vector<int> stride(spec_.dims.size(), 1);
            for (std::size_t d = 1; d < spec_.dims.size(); ++d)
                stride[d] = stride[d - 1] * spec_.dims[d - 1];
            for (int v = 0; v < nodes; ++v) {
                for (std::size_t d = 0; d < spec_.dims.size(); ++d) {
                    const int size = spec_.dims[d];
                    if (size < 2) continue;
                    const int coord = (v / stride[d]) % size;
                    // A 2-ring's +1 and -1 neighbour coincide; list the
                    // link once.
                    if (size == 2 && coord == 1) continue;
                    const int next = v + ((coord + 1) % size - coord) * stride[d];
                    result.push_back({v, next, 0});
                }
            }
            break;
        }
        case TopologyKind::Dragonfly: {
            const int nodes = node_count();
            const int r = spec_.routers;
            const auto router_id = [&](int group, int index) {
                return nodes + group * r + index;
            };
            for (int v = 0; v < nodes; ++v)
                result.push_back({v, nodes + v / spec_.nodes_per_router, 0});
            for (int g = 0; g < spec_.groups; ++g)
                for (int i = 0; i < r; ++i)
                    for (int j = i + 1; j < r; ++j)
                        result.push_back({router_id(g, i), router_id(g, j), 1});
            for (int gi = 0; gi < spec_.groups; ++gi)
                for (int gj = gi + 1; gj < spec_.groups; ++gj)
                    for (int k = 0; k < r; ++k)
                        result.push_back({router_id(gi, k), router_id(gj, k), 2});
            break;
        }
        case TopologyKind::Custom: result = spec_.links; break;
    }
    return result;
}

std::vector<RouteHop> Topology::route(int node_a, int node_b) const {
    SERVET_CHECK(node_a >= 0 && node_a < node_count());
    SERVET_CHECK(node_b >= 0 && node_b < node_count());
    SERVET_CHECK_MSG(node_a != node_b, "route of a node to itself is empty");
    switch (spec_.kind) {
        case TopologyKind::None: break;
        case TopologyKind::FatTree: return route_fat_tree(node_a, node_b);
        case TopologyKind::Torus: return route_torus(node_a, node_b);
        case TopologyKind::Dragonfly: return route_dragonfly(node_a, node_b);
        case TopologyKind::Custom: return route_custom(node_a, node_b);
    }
    return {};
}

std::vector<RouteHop> Topology::route_fat_tree(int a, int b) const {
    const int nodes = node_count();
    const int k = spec_.arity;
    // Lowest common ancestor level: smallest l with equal level-l parents.
    int meet = 1;
    {
        int pa = a / k;
        int pb = b / k;
        while (pa != pb) {
            pa /= k;
            pb /= k;
            ++meet;
        }
    }
    std::vector<RouteHop> hops;
    // Up a's spine to the meet switch, then down b's spine.
    int from = a;
    int prefix = a;
    for (int l = 1; l <= meet; ++l) {
        prefix /= k;
        const int to = fat_tree_level_base(nodes, k, l) + prefix;
        hops.push_back({from, to, l - 1});
        from = to;
    }
    for (int l = meet - 1; l >= 1; --l) {
        int prefix_b = b;
        for (int d = 0; d < l; ++d) prefix_b /= k;
        const int to = fat_tree_level_base(nodes, k, l) + prefix_b;
        hops.push_back({from, to, l});
        from = to;
    }
    if (meet >= 1) hops.push_back({from, b, 0});
    return hops;
}

std::vector<RouteHop> Topology::route_torus(int a, int b) const {
    std::vector<int> stride(spec_.dims.size(), 1);
    for (std::size_t d = 1; d < spec_.dims.size(); ++d)
        stride[d] = stride[d - 1] * spec_.dims[d - 1];
    std::vector<RouteHop> hops;
    int current = a;
    // Dimension-ordered minimal routing: correct each coordinate in turn,
    // going around the shorter way; ties break to the positive direction.
    for (std::size_t d = 0; d < spec_.dims.size(); ++d) {
        const int size = spec_.dims[d];
        if (size < 2) continue;
        const int from_coord = (current / stride[d]) % size;
        const int to_coord = (b / stride[d]) % size;
        const int forward = (to_coord - from_coord + size) % size;
        const int backward = size - forward;
        const int steps = std::min(forward, backward);
        const int direction = forward <= backward ? 1 : -1;
        int coord = from_coord;
        for (int s = 0; s < steps; ++s) {
            const int next_coord = (coord + direction + size) % size;
            const int next = current + (next_coord - coord) * stride[d];
            hops.push_back({current, next, 0});
            current = next;
            coord = next_coord;
        }
    }
    return hops;
}

std::vector<RouteHop> Topology::route_dragonfly(int a, int b) const {
    const int nodes = node_count();
    const int r = spec_.routers;
    const int n = spec_.nodes_per_router;
    const auto router_id = [&](int group, int index) { return nodes + group * r + index; };
    const int ra_index = (a / n) % r;
    const int rb_index = (b / n) % r;
    const int ga = a / (n * r);
    const int gb = b / (n * r);
    const int ra = router_id(ga, ra_index);
    const int rb = router_id(gb, rb_index);

    std::vector<RouteHop> hops;
    hops.push_back({a, ra, 0});
    int current = ra;
    if (ga != gb) {
        // Minimal routing: router k of every group links directly to
        // router k of every other group, so one global hop always exists.
        const int entry = router_id(gb, ra_index);
        hops.push_back({current, entry, 2});
        current = entry;
    }
    if (current != rb) {
        hops.push_back({current, rb, 1});
        current = rb;
    }
    hops.push_back({current, b, 0});
    return hops;
}

std::vector<RouteHop> Topology::route_custom(int a, int b) const {
    // Breadth-first parent walk; the tree makes the path unique, so the
    // route is deterministic regardless of traversal order.
    std::vector<int> parent(custom_adjacency_.size(), -1);
    std::vector<int> parent_tier(custom_adjacency_.size(), -1);
    std::deque<int> frontier = {a};
    parent[static_cast<std::size_t>(a)] = a;
    while (!frontier.empty()) {
        const int v = frontier.front();
        frontier.pop_front();
        if (v == b) break;
        for (const auto& [peer, tier] : custom_adjacency_[static_cast<std::size_t>(v)]) {
            if (parent[static_cast<std::size_t>(peer)] >= 0) continue;
            parent[static_cast<std::size_t>(peer)] = v;
            parent_tier[static_cast<std::size_t>(peer)] = tier;
            frontier.push_back(peer);
        }
    }
    SERVET_CHECK_MSG(parent[static_cast<std::size_t>(b)] >= 0,
                     "custom topology does not connect the pair");
    std::vector<RouteHop> reversed;
    for (int v = b; v != a; v = parent[static_cast<std::size_t>(v)])
        reversed.push_back({parent[static_cast<std::size_t>(v)], v,
                            parent_tier[static_cast<std::size_t>(v)]});
    return {reversed.rbegin(), reversed.rend()};
}

RouteClass Topology::route_class(int node_a, int node_b) const {
    const std::vector<RouteHop> hops = route(node_a, node_b);
    RouteClass cls;
    cls.hops = static_cast<int>(hops.size());
    for (const RouteHop& hop : hops) cls.tier = std::max(cls.tier, hop.tier);
    return cls;
}

Seconds Topology::latency(int node_a, int node_b, Bytes size) const {
    SERVET_CHECK_MSG(!spec_.tiers.empty(), "topology latency needs tier parameters");
    Seconds total = 0;
    for (const RouteHop& hop : route(node_a, node_b)) {
        const TopologyTier& t = tier(hop.tier);
        total += t.hop_latency + static_cast<double>(size) / t.bandwidth;
    }
    return total;
}

const TopologyTier& Topology::tier(int index) const {
    SERVET_CHECK(index >= 0 && index < static_cast<int>(spec_.tiers.size()));
    return spec_.tiers[static_cast<std::size_t>(index)];
}

std::vector<CorePair> cluster_probe_pairs(const TopologySpec& topology, int cores_per_node,
                                          int per_class) {
    SERVET_CHECK(topology.enabled());
    SERVET_CHECK(cores_per_node >= 1 && per_class >= 1);
    std::vector<CorePair> result;
    for (CoreId a = 0; a < cores_per_node; ++a)
        for (CoreId b = a + 1; b < cores_per_node; ++b) result.push_back({a, b});

    const Topology topo(topology);
    const int nodes = topo.node_count();
    std::map<RouteClass, std::vector<std::pair<int, int>>> classes;
    for (int i = 0; i < nodes; ++i)
        for (int j = i + 1; j < nodes; ++j) classes[topo.route_class(i, j)].push_back({i, j});

    for (const auto& [cls, node_pairs] : classes) {
        // Node-disjoint representatives so the concurrency probe can put
        // several simultaneous messages on this class's links.
        std::set<int> used;
        int taken = 0;
        for (const auto& [i, j] : node_pairs) {
            if (used.contains(i) || used.contains(j)) continue;
            used.insert(i);
            used.insert(j);
            result.push_back({i * cores_per_node, j * cores_per_node});
            if (++taken >= per_class) break;
        }
    }
    return result;
}

}  // namespace servet::sim
