// Stream prefetcher model. Section III-A motivates the 1 KiB probe stride
// precisely because "current prefetchers work with strides up to 256 or 512
// bytes": a smaller stride lets the prefetcher hide capacity misses and
// corrupts the size estimate. This model captures that: it detects a stable
// stride and, once confident, pulls the next line(s) into the hierarchy
// ahead of the demand access — but only for strides it can track.
//
// Two entry points drive the same state machine:
//  - observe(): one demand access at a time (the scalar oracle path).
//  - plan_run(): a whole constant-stride run at once (the batched engine).
//    The run's per-access emission schedule is closed-form — streaks grow
//    by one per access — so the plan advances internal state to the end of
//    the run and tells the caller exactly which accesses would have
//    emitted prefetches, byte-for-byte equal to calling observe() per
//    access (tests/test_prefetcher.cpp pins the equivalence).
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace servet::sim {

struct PrefetcherSpec {
    bool enabled = true;
    Bytes max_stride = 512;   ///< largest stride the unit can follow
    int trigger_streak = 2;   ///< same-stride repeats before prefetching starts
    int degree = 2;           ///< lines fetched ahead once streaming
};

/// Emission schedule for one constant-stride run of demand accesses, as
/// plan_run() computes it. Access 0 (whose incoming stride is the boundary
/// step from whatever preceded the run) is described separately from the
/// steady accesses 1..count-1.
struct StreamRunPlan {
    bool first_emits = false;       ///< access 0 emits `degree` prefetches
    std::int64_t first_stride = 0;  ///< tracked stride behind access 0's emission
    /// Smallest index >= 1 that emits; every later access emits too.
    /// >= count means no steady-state emission in this run.
    std::uint64_t emit_from = 0;
    std::int64_t emit_stride = 0;   ///< tracked stride for accesses >= 1
};

class StreamPrefetcher {
  public:
    explicit StreamPrefetcher(const PrefetcherSpec& spec) : spec_(spec) {}

    /// Observe a demand access at virtual address `vaddr`. Returns the
    /// number of prefetch addresses written into `out` (caller provides
    /// space for at least spec.degree entries); those addresses should be
    /// filled into the cache hierarchy by the engine.
    int observe(std::uint64_t vaddr, std::uint64_t* out);

    /// Observe a whole run of `count` accesses at `start`, `start +
    /// stride`, ..., advancing internal state exactly as `count` observe()
    /// calls would, and return which accesses emit prefetches. An emitting
    /// access i issues spec().degree addresses `addr_i + d * stride'` for
    /// d = 1..degree, with stride' the plan's stride for that access.
    [[nodiscard]] StreamRunPlan plan_run(std::uint64_t start, std::int64_t stride,
                                         std::uint64_t count);

    void reset();

    [[nodiscard]] const PrefetcherSpec& spec() const { return spec_; }
    [[nodiscard]] bool streaming() const { return streak_ >= spec_.trigger_streak; }

  private:
    PrefetcherSpec spec_;
    std::uint64_t last_addr_ = 0;
    std::int64_t last_stride_ = 0;
    int streak_ = 0;
    bool has_last_ = false;
};

}  // namespace servet::sim
