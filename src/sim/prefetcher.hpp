// Stream prefetcher model. Section III-A motivates the 1 KiB probe stride
// precisely because "current prefetchers work with strides up to 256 or 512
// bytes": a smaller stride lets the prefetcher hide capacity misses and
// corrupts the size estimate. This model captures that: it detects a stable
// stride and, once confident, pulls the next line(s) into the hierarchy
// ahead of the demand access — but only for strides it can track.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace servet::sim {

struct PrefetcherSpec {
    bool enabled = true;
    Bytes max_stride = 512;   ///< largest stride the unit can follow
    int trigger_streak = 2;   ///< same-stride repeats before prefetching starts
    int degree = 2;           ///< lines fetched ahead once streaming
};

class StreamPrefetcher {
  public:
    explicit StreamPrefetcher(const PrefetcherSpec& spec) : spec_(spec) {}

    /// Observe a demand access at virtual address `vaddr`. Returns the
    /// number of prefetch addresses written into `out` (caller provides
    /// space for at least spec.degree entries); those addresses should be
    /// filled into the cache hierarchy by the engine.
    int observe(std::uint64_t vaddr, std::uint64_t* out);

    void reset();

    [[nodiscard]] const PrefetcherSpec& spec() const { return spec_; }
    [[nodiscard]] bool streaming() const { return streak_ >= spec_.trigger_streak; }

  private:
    PrefetcherSpec spec_;
    std::uint64_t last_addr_ = 0;
    std::int64_t last_stride_ = 0;
    int streak_ = 0;
    bool has_last_ = false;
};

}  // namespace servet::sim
