// The machine simulator proper: owns one SetAssocCache per physical cache
// instance, a stream prefetcher per core, and a page mapper, and pushes
// benchmark access traces through them. Traversals by multiple cores are
// interleaved round-robin so thrashing in shared caches (the signal behind
// the shared-cache benchmark, Fig. 5) emerges from LRU replacement rather
// than being scripted.
//
// Two engines execute the same machine model (docs/simulator.md):
//
//  - traverse(): the batched line-stream pipeline. Each core's traversal
//    is planned once as an AccessStream, the cache lookup path per core is
//    resolved to a flat array at reset time, the prefetcher is notified
//    per constant-stride run instead of per access, and a one-entry
//    per-core page-translation cache collapses the page mapper and TLB
//    work to one consultation per page crossing.
//
//  - traverse_reference(): the scalar oracle — one access_cost() call per
//    core per element. Slow, obviously correct, and the equivalence
//    anchor: both engines must agree cycle-for-cycle and Stable-counter-
//    for-counter (tests/test_batched_equivalence.cpp), which is what lets
//    the golden profiles stay pinned across engine work.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hpp"
#include "obs/metrics.hpp"
#include "sim/access_stream.hpp"
#include "sim/machine.hpp"
#include "sim/memory_model.hpp"
#include "sim/page_mapper.hpp"
#include "sim/prefetcher.hpp"

namespace servet::sim {

struct TraversalResult {
    std::vector<Cycles> cycles_per_access;  ///< one entry per requested core
    std::uint64_t accesses_per_core = 0;
};

class MachineSim {
  public:
    explicit MachineSim(MachineSpec spec);

    /// Each core in `cores` (all distinct) traverses its own array of
    /// `array_bytes` with the given stride (the mcalibrator access
    /// pattern, Fig. 1), interleaved access-by-access. The array is
    /// initialized (every line touched sequentially, as the real
    /// benchmark's setup loop does), one warm-up pass runs unmeasured,
    /// then `measure_passes` passes are timed.
    ///
    /// `fresh_placement` selects the allocation behaviour: true draws a
    /// fresh random physical placement (a new malloc+touch — what
    /// mcalibrator's repeats average over); false reuses a placement
    /// deterministic in (machine, array size, core) — a statically
    /// allocated buffer, which is what the pairwise shared-cache probe
    /// needs so its concurrent/reference ratio cancels placement luck.
    ///
    /// Runs the batched line-stream engine; cycle-for-cycle equal to
    /// traverse_reference().
    [[nodiscard]] TraversalResult traverse(const std::vector<CoreId>& cores, Bytes array_bytes,
                                           Bytes stride, int measure_passes,
                                           bool fresh_placement = true);

    /// The retained scalar engine: same contract, same results, one
    /// access_cost() per core per element. The equivalence oracle for
    /// traverse(); also a readable spec of the access semantics.
    [[nodiscard]] TraversalResult traverse_reference(const std::vector<CoreId>& cores,
                                                     Bytes array_bytes, Bytes stride,
                                                     int measure_passes,
                                                     bool fresh_placement = true);

    /// Single-core convenience wrapper over traverse().
    [[nodiscard]] Cycles traverse_one(CoreId core, Bytes array_bytes, Bytes stride,
                                      int measure_passes, bool fresh_placement = true);

    /// Analytic streaming-copy bandwidth (Section III-C substrate): `core`'s
    /// copy bandwidth while all cores in `active` stream concurrently.
    /// Arrays that fit in cache short-circuit to cache bandwidth — the
    /// benchmark layer is responsible for sizing arrays past the LLC.
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, const std::vector<CoreId>& active,
                                                Bytes array_bytes) const;

    [[nodiscard]] const MachineSpec& spec() const { return spec_; }
    [[nodiscard]] const MemoryModel& memory_model() const { return memory_; }

    /// Total simulated demand accesses since construction (for perf tests).
    [[nodiscard]] std::uint64_t total_accesses() const { return total_accesses_; }

  private:
    /// One step of a core's resolved lookup path: the physical cache
    /// instance serving the core at one level, with the level's cost and
    /// indexing mode flattened out of the spec. Rebuilt (cheaply) by
    /// reset_microarchitecture so the hot loop never consults
    /// instance_of_ or spec_.levels.
    struct ResolvedLevel {
        SetAssocCache* cache;
        Cycles hit_cycles;
        bool physically_indexed;
    };

    struct CoreRun;  // per-core batched traversal state (engine.cpp)

    /// Shared scaffolding of both engines: argument checks, microarch
    /// reset, address-space and contention setup, the init + warm-up +
    /// measured pass schedule, counter flush, and result packaging.
    /// `batched` picks the execution engine for the passes.
    [[nodiscard]] TraversalResult run_traversal(const std::vector<CoreId>& cores,
                                                Bytes array_bytes, Bytes stride,
                                                int measure_passes, bool fresh_placement,
                                                bool batched);

    /// Scalar engine: one interleaved constant-stride run over all cores,
    /// one access_cost() per element per core, accumulating per-core
    /// cycles into `totals` when non-null. The single loop body behind the
    /// init pass, the warm-up, and every measured pass. `run` holds
    /// offsets; each core's address is `bases[i] + run.address(k)`.
    void reference_pass(const std::vector<CoreId>& cores,
                        const std::vector<std::uint64_t>& bases, const AccessRun& run,
                        const std::vector<double>& latency_mult, std::vector<Cycles>* totals);

    /// Batched engine: the same interleaved run, streamed through the
    /// resolved paths with run-level prefetcher plans and page-translation
    /// caches. kMeasure selects cycle accumulation at compile time.
    template <bool kMeasure>
    void batched_pass(std::vector<CoreRun>& runs, std::int64_t stride, std::uint64_t count);

    /// One batched demand access (defined in engine.cpp, inlined into the
    /// pass loops). `index` is the access's position within its run; the
    /// run's StreamRunPlan decides whether it emits prefetches.
    Cycles batched_access(CoreRun& run, std::uint64_t vaddr, std::uint64_t index);
    /// One batched prefetch fill through `run`'s resolved path.
    void batched_fill(CoreRun& run, std::uint64_t vaddr);

    /// Cost of one demand access by `core` at virtual address `vaddr`,
    /// including prefetcher side effects. `latency_mult` scales the
    /// main-memory latency (bus queueing under concurrency). The scalar
    /// oracle's inner step.
    Cycles access_cost(CoreId core, std::uint64_t vaddr, double latency_mult);

    void fill_for_prefetch(CoreId core, std::uint64_t vaddr);
    void reset_microarchitecture(Bytes array_bytes, bool fresh_placement);
    void build_resolved_paths();

    /// Registry handles looked up once at construction (hot-path rule in
    /// obs/metrics.hpp), fed aggregate deltas by flush_traverse_counters.
    struct CounterHandles {
        struct Level {
            obs::Counter* hits;
            obs::Counter* misses;
            obs::Counter* evictions;
        };
        std::vector<Level> levels;
        obs::Counter* prefetch_issued;
        obs::Counter* prefetch_useful;
        obs::Counter* tlb_misses;
        obs::Counter* page_faults;
        obs::Counter* page_translations;
        obs::Counter* contended_accesses;
        obs::Counter* traverse_calls;
        obs::Counter* bandwidth_queries;
        obs::Histogram* traverse_accesses;
    };
    void register_counters();

    /// Sums the per-cache/TLB/mapper counts accumulated since the last
    /// reset_microarchitecture, pushes them to the registry, and zeroes
    /// the local counts. Called once at the end of every traverse, so the
    /// simulator's inner loop never touches an atomic.
    void flush_traverse_counters(std::uint64_t demand_accesses);

    MachineSpec spec_;
    MemoryModel memory_;
    std::vector<std::vector<SetAssocCache>> caches_;  // [level][instance]
    std::vector<std::vector<int>> instance_of_;       // [level][core] -> instance
    std::vector<StreamPrefetcher> prefetchers_;       // per core
    std::vector<SetAssocCache> tlbs_;                 // per core, when enabled
    std::vector<std::vector<ResolvedLevel>> resolved_paths_;  // [core][level]
    std::unique_ptr<PageMapper> mapper_;
    std::uint64_t page_shift_ = 0;
    std::uint64_t page_mask_ = 0;  // page_size - 1
    std::uint64_t run_counter_ = 0;
    std::uint64_t total_accesses_ = 0;
    CounterHandles counters_;
    std::uint64_t tally_prefetch_issued_ = 0;
    std::uint64_t tally_contended_ = 0;
    /// Logical translation count: one per demand access plus one per
    /// prefetch fill, whichever engine ran. The scalar oracle performs
    /// exactly one PageMapper::translate() per logical translation; the
    /// batched engine elides physical translations behind its page caches
    /// but tallies them here, so `sim.page.translations` is engine-
    /// invariant and the goldens stay pinned.
    std::uint64_t tally_translations_ = 0;
};

}  // namespace servet::sim
