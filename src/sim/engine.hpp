// The machine simulator proper: owns one SetAssocCache per physical cache
// instance, a stream prefetcher per core, and a page mapper, and pushes
// benchmark access traces through them. Traversals by multiple cores are
// interleaved round-robin so thrashing in shared caches (the signal behind
// the shared-cache benchmark, Fig. 5) emerges from LRU replacement rather
// than being scripted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"
#include "sim/memory_model.hpp"
#include "sim/page_mapper.hpp"
#include "sim/prefetcher.hpp"

namespace servet::sim {

struct TraversalResult {
    std::vector<Cycles> cycles_per_access;  ///< one entry per requested core
    std::uint64_t accesses_per_core = 0;
};

class MachineSim {
  public:
    explicit MachineSim(MachineSpec spec);

    /// Each core in `cores` traverses its own array of `array_bytes` with
    /// the given stride (the mcalibrator access pattern, Fig. 1),
    /// interleaved access-by-access. The array is initialized (every line
    /// touched sequentially, as the real benchmark's setup loop does), one
    /// warm-up pass runs unmeasured, then `measure_passes` passes are
    /// timed.
    ///
    /// `fresh_placement` selects the allocation behaviour: true draws a
    /// fresh random physical placement (a new malloc+touch — what
    /// mcalibrator's repeats average over); false reuses a placement
    /// deterministic in (machine, array size, core) — a statically
    /// allocated buffer, which is what the pairwise shared-cache probe
    /// needs so its concurrent/reference ratio cancels placement luck.
    [[nodiscard]] TraversalResult traverse(const std::vector<CoreId>& cores, Bytes array_bytes,
                                           Bytes stride, int measure_passes,
                                           bool fresh_placement = true);

    /// Single-core convenience wrapper.
    [[nodiscard]] Cycles traverse_one(CoreId core, Bytes array_bytes, Bytes stride,
                                      int measure_passes, bool fresh_placement = true);

    /// Analytic streaming-copy bandwidth (Section III-C substrate): `core`'s
    /// copy bandwidth while all cores in `active` stream concurrently.
    /// Arrays that fit in cache short-circuit to cache bandwidth — the
    /// benchmark layer is responsible for sizing arrays past the LLC.
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, const std::vector<CoreId>& active,
                                                Bytes array_bytes) const;

    [[nodiscard]] const MachineSpec& spec() const { return spec_; }
    [[nodiscard]] const MemoryModel& memory_model() const { return memory_; }

    /// Total simulated demand accesses since construction (for perf tests).
    [[nodiscard]] std::uint64_t total_accesses() const { return total_accesses_; }

  private:
    struct CoreRun;  // per-core traversal state

    /// Cost of one demand access by `core` at virtual address `vaddr`,
    /// including prefetcher side effects. `latency_mult` scales the
    /// main-memory latency (bus queueing under concurrency).
    Cycles access_cost(CoreId core, std::uint64_t vaddr, double latency_mult);

    void fill_for_prefetch(CoreId core, std::uint64_t vaddr);
    void reset_microarchitecture(Bytes array_bytes, bool fresh_placement);

    /// Registry handles looked up once at construction (hot-path rule in
    /// obs/metrics.hpp), fed aggregate deltas by flush_traverse_counters.
    struct CounterHandles {
        struct Level {
            obs::Counter* hits;
            obs::Counter* misses;
            obs::Counter* evictions;
        };
        std::vector<Level> levels;
        obs::Counter* prefetch_issued;
        obs::Counter* prefetch_useful;
        obs::Counter* tlb_misses;
        obs::Counter* page_faults;
        obs::Counter* page_translations;
        obs::Counter* contended_accesses;
        obs::Counter* traverse_calls;
        obs::Counter* bandwidth_queries;
        obs::Histogram* traverse_accesses;
    };
    void register_counters();

    /// Sums the per-cache/TLB/mapper counts accumulated since the last
    /// reset_microarchitecture, pushes them to the registry, and zeroes
    /// the local counts. Called once at the end of every traverse, so the
    /// simulator's inner loop never touches an atomic.
    void flush_traverse_counters(std::uint64_t demand_accesses);

    MachineSpec spec_;
    MemoryModel memory_;
    std::vector<std::vector<SetAssocCache>> caches_;  // [level][instance]
    std::vector<std::vector<int>> instance_of_;       // [level][core] -> instance
    std::vector<StreamPrefetcher> prefetchers_;       // per core
    std::vector<SetAssocCache> tlbs_;                 // per core, when enabled
    std::unique_ptr<PageMapper> mapper_;
    std::uint64_t run_counter_ = 0;
    std::uint64_t total_accesses_ = 0;
    CounterHandles counters_;
    std::uint64_t tally_prefetch_issued_ = 0;
    std::uint64_t tally_contended_ = 0;
};

}  // namespace servet::sim
