#include "sim/page_mapper.hpp"

#include <bit>

#include "base/check.hpp"

namespace servet::sim {

PageMapper::PageMapper(PagePolicy policy, Bytes page_size, std::uint64_t physical_pages,
                       std::uint64_t colors, std::uint64_t seed)
    : policy_(policy),
      page_size_(page_size),
      physical_pages_(physical_pages),
      colors_(colors == 0 ? 1 : colors),
      seed_(seed) {
    SERVET_CHECK_MSG(std::has_single_bit(page_size), "page size must be a power of two");
    SERVET_CHECK_MSG(physical_pages >= 16, "physical memory too small");
    SERVET_CHECK_MSG(colors_ <= physical_pages_, "more colors than frames");
    page_shift_ = static_cast<std::uint64_t>(std::countr_zero(page_size));
}

std::uint64_t PageMapper::frame_of(std::uint64_t vpage) {
    if (const auto it = map_.find(vpage); it != map_.end()) return it->second;

    // The candidate sequence is a function of (seed, vpage) alone, so a
    // page's frame does not depend on the order pages were first touched.
    // This is what lets a statically placed buffer behave identically in a
    // solo reference run and in a concurrent pair run (whose interleaved
    // initialization touches pages in a different global order). Only on a
    // frame collision (rare: working sets are far smaller than physical
    // memory) does the resolution depend on which page claimed it first.
    Rng page_rng(seed_ ^ (vpage * 0x9e3779b97f4a7c15ULL));
    std::uint64_t frame = 0;
    if (policy_ == PagePolicy::Coloring) {
        // Pick a random frame of the right color. Frames of color c are
        // c, c + colors, c + 2*colors, ...
        const std::uint64_t color = vpage % colors_;
        const std::uint64_t per_color = physical_pages_ / colors_;
        for (;;) {
            frame = color + colors_ * page_rng.next_below(per_color);
            if (used_frames_.insert(frame).second) break;
        }
    } else {
        for (;;) {
            frame = page_rng.next_below(physical_pages_);
            if (used_frames_.insert(frame).second) break;
        }
    }
    map_.emplace(vpage, frame);
    return frame;
}

std::uint64_t PageMapper::translate(std::uint64_t vaddr) {
    ++translations_;
    const std::uint64_t vpage = vaddr >> page_shift_;
    const std::uint64_t offset = vaddr & (page_size_ - 1);
    return (frame_of(vpage) << page_shift_) | offset;
}

void PageMapper::reset() {
    map_.clear();
    used_frames_.clear();
    translations_ = 0;
}

}  // namespace servet::sim
