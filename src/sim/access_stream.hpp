// AccessStream: the line-stream representation of one core's traversal.
//
// The benchmark access pattern behind every Servet probe (Fig. 1) is two
// constant-stride sweeps over one array: a setup sweep that touches every
// cache line sequentially, then repeated probe passes at the measurement
// stride. Instead of re-deriving `base + offset` per element inside the
// simulator's hot loop, the engine plans both sweeps once per
// (array, stride, core) as AccessRuns — (base, stride, count) triples —
// and streams them. A run is also the unit the prefetcher model consumes
// (StreamPrefetcher::plan_run) and the granularity at which the engine
// resolves page translations.
#pragma once

#include <cstdint>

#include "base/check.hpp"
#include "base/types.hpp"

namespace servet::sim {

/// One constant-stride run of demand accesses: addresses `base + k*stride`
/// for k in [0, count).
struct AccessRun {
    std::uint64_t base = 0;
    std::int64_t stride = 0;  ///< signed: boundary math stays exact
    std::uint64_t count = 0;

    [[nodiscard]] std::uint64_t address(std::uint64_t k) const {
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(base) +
                                          static_cast<std::int64_t>(k) * stride);
    }
};

/// One core's planned traversal: the line-granular init sweep plus the
/// probe pass replayed for the warm-up and every measured pass.
struct AccessStream {
    AccessRun init;     ///< every line touched once, sequentially
    AccessRun measure;  ///< ceil(array/stride) probe accesses per pass

    /// Plan the traversal of `array_bytes` at `stride` from virtual
    /// address `base`, with `line_size` the innermost cache's line.
    [[nodiscard]] static AccessStream plan(std::uint64_t base, Bytes array_bytes, Bytes stride,
                                           Bytes line_size) {
        SERVET_CHECK(array_bytes > 0 && stride > 0 && line_size > 0);
        AccessStream stream;
        stream.init = {base, static_cast<std::int64_t>(line_size),
                       (array_bytes + line_size - 1) / line_size};
        stream.measure = {base, static_cast<std::int64_t>(stride),
                          (array_bytes + stride - 1) / stride};
        return stream;
    }
};

}  // namespace servet::sim
