#include "hw/topology.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace servet::hw {

std::optional<std::vector<CoreId>> parse_cpulist(const std::string& text) {
    std::vector<CoreId> cores;
    std::stringstream stream(text);
    std::string token;
    while (std::getline(stream, token, ',')) {
        // Trim whitespace/newline.
        while (!token.empty() && (token.back() == '\n' || token.back() == ' '))
            token.pop_back();
        while (!token.empty() && token.front() == ' ') token.erase(token.begin());
        if (token.empty()) continue;

        const auto dash = token.find('-');
        int lo = 0, hi = 0;
        if (dash == std::string::npos) {
            const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), lo);
            if (ec != std::errc{} || p != token.data() + token.size()) return std::nullopt;
            hi = lo;
        } else {
            const std::string a = token.substr(0, dash);
            const std::string b = token.substr(dash + 1);
            const auto [pa, ea] = std::from_chars(a.data(), a.data() + a.size(), lo);
            const auto [pb, eb] = std::from_chars(b.data(), b.data() + b.size(), hi);
            if (ea != std::errc{} || eb != std::errc{} || pa != a.data() + a.size() ||
                pb != b.data() + b.size() || hi < lo)
                return std::nullopt;
        }
        for (int c = lo; c <= hi; ++c) cores.push_back(c);
    }
    if (cores.empty()) return std::nullopt;
    return cores;
}

std::optional<Bytes> parse_sysfs_size(const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::size_t pos = 0;
    unsigned long long value = 0;
    const auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{}) return std::nullopt;
    pos = static_cast<std::size_t>(p - text.data());
    Bytes factor = 1;
    if (pos < text.size()) {
        switch (text[pos]) {
            case 'K': case 'k': factor = KiB; break;
            case 'M': case 'm': factor = MiB; break;
            case 'G': case 'g': factor = GiB; break;
            case '\n': break;
            default: return std::nullopt;
        }
    }
    return static_cast<Bytes>(value) * factor;
}

namespace {
std::optional<std::string> read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}
}  // namespace

namespace {
/// Strict sysfs `level` parse: digits with optional trailing newline, like
/// the endptr-checked parsers above. An unparsable or non-positive level
/// means the index is garbage, not a level-0 cache.
std::optional<int> parse_sysfs_level(const std::string& text) {
    std::string trimmed = text;
    while (!trimmed.empty() && (trimmed.back() == '\n' || trimmed.back() == ' '))
        trimmed.pop_back();
    int level = 0;
    const auto [p, ec] =
        std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), level);
    if (ec != std::errc{} || p != trimmed.data() + trimmed.size() || level < 1)
        return std::nullopt;
    return level;
}
}  // namespace

std::vector<SysfsCache> sysfs_caches(CoreId core, const std::string& sysfs_cpu_root) {
    std::vector<SysfsCache> caches;
    const std::string base = sysfs_cpu_root + "/cpu" + std::to_string(core) + "/cache/index";
    for (int index = 0; index < 8; ++index) {
        const std::string dir = base + std::to_string(index) + "/";
        const auto level_text = read_file(dir + "level");
        if (!level_text) break;  // no more indices

        SysfsCache cache;
        const auto level = parse_sysfs_level(*level_text);
        if (!level) continue;  // malformed index: skip it, don't invent a level-0 cache
        cache.level = *level;
        cache.type = read_file(dir + "type").value_or("");
        while (!cache.type.empty() && cache.type.back() == '\n') cache.type.pop_back();
        if (cache.type == "Instruction") continue;

        if (const auto size_text = read_file(dir + "size"))
            cache.size = parse_sysfs_size(*size_text).value_or(0);
        if (const auto list_text = read_file(dir + "shared_cpu_list"))
            cache.shared_with = parse_cpulist(*list_text).value_or(std::vector<CoreId>{});
        caches.push_back(std::move(cache));
    }
    return caches;
}

std::vector<SysfsCache> sysfs_caches(CoreId core) {
    return sysfs_caches(core, "/sys/devices/system/cpu");
}

}  // namespace servet::hw
