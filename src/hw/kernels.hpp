// The native measurement kernels: the mcalibrator traversal of Fig. 1 and
// a STREAM-style copy. Both follow the paper's anti-optimization tricks —
// the traversal stride is *read from the array itself* so the compiler
// cannot fold the loop, and a carried `aux` accumulator keeps the loads
// live. Results are cycles per access / bytes per second on real hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace servet::hw {

/// The array traversed by mcalibrator: each element holds the stride (in
/// elements), exactly as in Fig. 1, so the access pattern is data-dependent.
class TraversalBuffer {
  public:
    /// Build a buffer of `bytes` rounded down to whole elements, every
    /// element holding `stride_bytes / sizeof(element)`.
    TraversalBuffer(Bytes bytes, Bytes stride_bytes);

    /// One full traversal (for j = 0; j < size; j += a[j]) accumulating
    /// into aux; returns aux so the loop cannot be optimized away.
    std::int64_t traverse_once();

    /// Measured traversal: runs one warm-up pass then `passes` timed
    /// passes; returns average cycles (TSC ticks) per access.
    [[nodiscard]] Cycles measure_cycles_per_access(int passes);

    [[nodiscard]] std::uint64_t accesses_per_pass() const;
    [[nodiscard]] Bytes size_bytes() const;

  private:
    std::vector<std::int32_t> data_;
    std::int32_t stride_elems_;
    std::int64_t aux_ = 0;
};

/// STREAM-style copy benchmark: bandwidth of copying `bytes` from one
/// array to another, averaged over `passes` (after one warm-up). The
/// arrays should be sized well past the last-level cache by the caller.
[[nodiscard]] BytesPerSecond measure_copy_bandwidth(Bytes bytes, int passes);

/// Defeat-the-cache helper: stream over a scratch buffer of `bytes` so
/// subsequent measurements start cold.
void flush_caches(Bytes bytes);

}  // namespace servet::hw
