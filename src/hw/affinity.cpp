#include "hw/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace servet::hw {

int online_core_count() {
#if defined(__linux__)
    const long n = sysconf(_SC_NPROCESSORS_ONLN);
    if (n > 0) return static_cast<int>(n);
#endif
    const unsigned hint = std::thread::hardware_concurrency();
    return hint > 0 ? static_cast<int>(hint) : 1;
}

bool pin_current_thread(CoreId core) {
#if defined(__linux__)
    if (core < 0) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(core), &set);
    return sched_setaffinity(0, sizeof set, &set) == 0;
#else
    (void)core;
    return false;
#endif
}

CoreId current_core() {
#if defined(__linux__)
    const int cpu = sched_getcpu();
    return cpu >= 0 ? cpu : -1;
#else
    return -1;
#endif
}

}  // namespace servet::hw
