// Cycle-accurate timing for the native backend. Uses the x86 TSC where
// available (serialized with lfence so it brackets the measured loop, not
// the surrounding pipeline) and falls back to steady_clock elsewhere. The
// TSC rate is calibrated once against steady_clock so results can be
// reported both in cycles (what mcalibrator's algorithm wants) and seconds.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace servet::hw {

/// Raw timestamp in TSC ticks (x86) or nanoseconds (fallback).
[[nodiscard]] std::uint64_t timestamp();

/// True when timestamp() reads the TSC.
[[nodiscard]] bool timestamp_is_tsc();

/// Ticks per second of timestamp(), calibrated on first use (~10 ms).
[[nodiscard]] double timestamp_frequency();

/// Convert a timestamp difference to seconds.
[[nodiscard]] Seconds ticks_to_seconds(std::uint64_t ticks);

/// Stopwatch over timestamp().
class Stopwatch {
  public:
    Stopwatch() : start_(timestamp()) {}
    void restart() { start_ = timestamp(); }
    [[nodiscard]] std::uint64_t elapsed_ticks() const { return timestamp() - start_; }
    [[nodiscard]] Seconds elapsed_seconds() const { return ticks_to_seconds(elapsed_ticks()); }

  private:
    std::uint64_t start_;
};

}  // namespace servet::hw
