// Optional Linux sysfs topology probe. Servet's whole point is to *measure*
// the topology rather than trust documentation, but on Linux the kernel's
// view (/sys/devices/system/cpu/cpu*/cache/) makes a useful cross-check for
// the native backend: examples print "measured vs sysfs" side by side.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace servet::hw {

struct SysfsCache {
    int level = 0;                    ///< 1, 2, 3...
    std::string type;                 ///< "Data", "Instruction", "Unified"
    Bytes size = 0;
    std::vector<CoreId> shared_with;  ///< cores sharing this cache instance
};

/// Caches visible to `core` per sysfs, or empty when sysfs is unavailable
/// (non-Linux, restricted container). Instruction caches are filtered out —
/// Servet measures the data path. An index whose `level` file does not
/// parse as a positive integer is skipped rather than reported as a bogus
/// level-0 cache.
[[nodiscard]] std::vector<SysfsCache> sysfs_caches(CoreId core);

/// Same probe against an alternative sysfs cpu root (the directory that
/// holds `cpuN/cache/indexM/`); lets tests exercise the parser against a
/// fixture tree.
[[nodiscard]] std::vector<SysfsCache> sysfs_caches(CoreId core,
                                                   const std::string& sysfs_cpu_root);

/// Parse a kernel cpulist string ("0-2,12-14") into core ids; exposed for
/// tests. Returns nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<CoreId>> parse_cpulist(const std::string& text);

/// Parse a sysfs cache size string ("32K", "12288K", "3M").
[[nodiscard]] std::optional<Bytes> parse_sysfs_size(const std::string& text);

}  // namespace servet::hw
