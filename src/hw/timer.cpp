#include "hw/timer.hpp"

#include <chrono>
#include <mutex>

namespace servet::hw {

namespace {

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kHaveTsc = true;

inline std::uint64_t read_tsc() {
    std::uint32_t lo = 0, hi = 0;
    asm volatile("lfence\n\trdtsc" : "=a"(lo), "=d"(hi)::"memory");
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
#else
constexpr bool kHaveTsc = false;

inline std::uint64_t read_tsc() { return 0; }
#endif

std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double calibrate_frequency() {
    if (!kHaveTsc) return 1e9;  // nanoseconds
    // Measure TSC ticks across a ~10 ms steady_clock window.
    const std::uint64_t ns0 = steady_ns();
    const std::uint64_t t0 = read_tsc();
    std::uint64_t ns1 = ns0;
    while (ns1 - ns0 < 10'000'000) ns1 = steady_ns();
    const std::uint64_t t1 = read_tsc();
    return static_cast<double>(t1 - t0) * 1e9 / static_cast<double>(ns1 - ns0);
}

}  // namespace

std::uint64_t timestamp() { return kHaveTsc ? read_tsc() : steady_ns(); }

bool timestamp_is_tsc() { return kHaveTsc; }

double timestamp_frequency() {
    static const double frequency = [] {
        static std::once_flag flag;
        static double value = 1e9;
        std::call_once(flag, [] { value = calibrate_frequency(); });
        return value;
    }();
    return frequency;
}

Seconds ticks_to_seconds(std::uint64_t ticks) {
    return static_cast<double>(ticks) / timestamp_frequency();
}

}  // namespace servet::hw
