// Thread-to-core pinning. Every concurrent measurement in the suite (the
// paper sets "the affinity of MPI processes to particular cores ... with
// the sched system library") depends on threads staying where they were
// put; without pinning, pairwise results are meaningless.
#pragma once

#include "base/types.hpp"

namespace servet::hw {

/// Number of online logical cores.
[[nodiscard]] int online_core_count();

/// Pin the calling thread to `core`. Returns false when the OS refuses
/// (core offline, restricted cpuset, unsupported platform).
bool pin_current_thread(CoreId core);

/// Core the calling thread is currently running on, or -1 if unknown.
[[nodiscard]] CoreId current_core();

}  // namespace servet::hw
