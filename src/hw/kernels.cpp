#include "hw/kernels.hpp"

#include <cstring>

#include "base/check.hpp"
#include "hw/timer.hpp"

namespace servet::hw {

namespace {
/// Optimization barrier: forces the compiler to assume `p` escapes.
inline void escape(void* p) { asm volatile("" : : "g"(p) : "memory"); }
inline void clobber() { asm volatile("" : : : "memory"); }
}  // namespace

TraversalBuffer::TraversalBuffer(Bytes bytes, Bytes stride_bytes) {
    SERVET_CHECK(bytes >= stride_bytes && stride_bytes >= sizeof(std::int32_t));
    SERVET_CHECK(stride_bytes % sizeof(std::int32_t) == 0);
    stride_elems_ = static_cast<std::int32_t>(stride_bytes / sizeof(std::int32_t));
    data_.assign(bytes / sizeof(std::int32_t), stride_elems_);
    escape(data_.data());
}

std::int64_t TraversalBuffer::traverse_once() {
    const std::int32_t* a = data_.data();
    const std::int64_t size = static_cast<std::int64_t>(data_.size());
    std::int64_t aux = aux_;
    // Fig. 1: for (j = 0; j < size; j += A[j]) aux += size. The load of
    // A[j] is on the critical path of the induction variable, so neither
    // vectorization nor strength reduction can elide it.
    for (std::int64_t j = 0; j < size; j += a[j]) aux += size;
    clobber();
    aux_ = aux;
    return aux;
}

std::uint64_t TraversalBuffer::accesses_per_pass() const {
    return (data_.size() + static_cast<std::uint64_t>(stride_elems_) - 1) /
           static_cast<std::uint64_t>(stride_elems_);
}

Bytes TraversalBuffer::size_bytes() const { return data_.size() * sizeof(std::int32_t); }

Cycles TraversalBuffer::measure_cycles_per_access(int passes) {
    SERVET_CHECK(passes > 0);
    (void)traverse_once();  // warm-up
    const std::uint64_t t0 = timestamp();
    for (int p = 0; p < passes; ++p) (void)traverse_once();
    const std::uint64_t elapsed = timestamp() - t0;
    return static_cast<double>(elapsed) /
           static_cast<double>(accesses_per_pass() * static_cast<std::uint64_t>(passes));
}

BytesPerSecond measure_copy_bandwidth(Bytes bytes, int passes) {
    SERVET_CHECK(bytes >= 64 && passes > 0);
    const std::size_t n = bytes / sizeof(double);
    std::vector<double> src(n, 1.0);
    std::vector<double> dst(n, 0.0);
    escape(src.data());
    escape(dst.data());

    std::memcpy(dst.data(), src.data(), n * sizeof(double));  // warm-up
    clobber();

    const std::uint64_t t0 = timestamp();
    for (int p = 0; p < passes; ++p) {
        std::memcpy(dst.data(), src.data(), n * sizeof(double));
        clobber();
    }
    const Seconds elapsed = ticks_to_seconds(timestamp() - t0);
    SERVET_CHECK(elapsed > 0);
    // STREAM copy counts bytes read + bytes written.
    return 2.0 * static_cast<double>(n * sizeof(double)) * passes / elapsed;
}

void flush_caches(Bytes bytes) {
    std::vector<std::uint8_t> scratch(bytes, 1);
    escape(scratch.data());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < scratch.size(); i += 64) sum += scratch[i];
    escape(&sum);
}

}  // namespace servet::hw
