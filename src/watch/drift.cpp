#include "watch/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hpp"
#include "stats/summary.hpp"

namespace servet::watch {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

const char* verdict_code(Verdict verdict) {
    switch (verdict) {
        case Verdict::None: return "drift.none";
        case Verdict::Suspect: return "drift.suspect";
        case Verdict::Confirmed: return "drift.confirmed";
    }
    return "drift.none";
}

Verdict worse(Verdict a, Verdict b) { return a < b ? b : a; }

double drift_score(double value, double center, double spread,
                   const DriftOptions& options) {
    // The floors keep a noiseless baseline (MAD exactly 0 on a
    // deterministic simulator, or all-identical samples anywhere) from
    // dividing by zero: it degrades to a relative band around the median.
    const double scale = std::max({spread, options.rel_floor * std::fabs(center),
                                   options.abs_floor});
    return std::fabs(value - center) / scale;
}

std::map<std::string, double> profile_metrics(const core::Profile& profile) {
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < profile.caches.size(); ++i)
        out["cache.L" + std::to_string(i + 1) + ".size"] =
            static_cast<double>(profile.caches[i].size);
    if (profile.memory.reference_bandwidth > 0)
        out["memory.reference_bandwidth"] = profile.memory.reference_bandwidth;
    for (std::size_t t = 0; t < profile.memory.tiers.size(); ++t)
        out["memory.tier" + std::to_string(t) + ".bandwidth"] =
            profile.memory.tiers[t].bandwidth;
    for (std::size_t l = 0; l < profile.comm.size(); ++l)
        out["comm.layer" + std::to_string(l) + ".latency"] = profile.comm[l].latency;
    return out;
}

DriftDetector::DriftDetector(DriftOptions options) : options_(std::move(options)) {
    SERVET_CHECK(options_.baseline_window >= 1);
    SERVET_CHECK(options_.min_baseline >= 1);
    SERVET_CHECK(options_.confirm_after >= 1);
    SERVET_CHECK(options_.suspect_score > 0 && options_.confirm_score >= options_.suspect_score);
}

std::vector<MetricVerdict> DriftDetector::observe(
    const std::map<std::string, double>& sample) {
    std::vector<MetricVerdict> out;

    // A metric the baseline knows but the sample lost is the strongest
    // drift there is: a whole measurement disappeared (a cache level no
    // longer detected, a comm layer gone).
    for (const auto& [name, baseline] : baselines_) {
        if (sample.count(name) != 0) continue;
        MetricVerdict verdict;
        verdict.metric = name;
        verdict.value = kNaN;
        verdict.baseline = baseline.values.empty() ? kNaN : stats::median(
            {baseline.values.begin(), baseline.values.end()});
        verdict.score = kNaN;
        verdict.verdict = Verdict::Confirmed;
        worst_ = worse(worst_, verdict.verdict);
        out.push_back(std::move(verdict));
    }

    for (const auto& [name, value] : sample) {
        Baseline& baseline = baselines_[name];
        MetricVerdict verdict;
        verdict.metric = name;
        verdict.value = value;

        if (baseline.values.size() < options_.min_baseline) {
            // Calibration: too few observations to judge against. Absorb
            // unconditionally and report in-band.
            verdict.baseline =
                baseline.values.empty()
                    ? value
                    : stats::median({baseline.values.begin(), baseline.values.end()});
            verdict.score = 0;
            verdict.verdict = Verdict::None;
        } else {
            const std::vector<double> window(baseline.values.begin(),
                                             baseline.values.end());
            const double center = stats::median(window);
            const double spread = stats::mad(window);
            verdict.baseline = center;
            verdict.score = drift_score(value, center, spread, options_);
            if (verdict.score < options_.suspect_score) {
                verdict.verdict = Verdict::None;
                baseline.out_of_band = 0;
            } else {
                ++baseline.out_of_band;
                verdict.verdict = (verdict.score >= options_.confirm_score ||
                                   baseline.out_of_band >= options_.confirm_after)
                                      ? Verdict::Confirmed
                                      : Verdict::Suspect;
            }
        }

        // Only in-band values feed the baseline: a drifted machine must
        // keep being reported, not quietly become the new normal. (A
        // deliberate re-baseline is a fresh --run-dir.)
        if (verdict.verdict == Verdict::None) {
            baseline.values.push_back(value);
            if (baseline.values.size() > options_.baseline_window)
                baseline.values.pop_front();
        }
        worst_ = worse(worst_, verdict.verdict);
        out.push_back(std::move(verdict));
    }

    std::sort(out.begin(), out.end(),
              [](const MetricVerdict& a, const MetricVerdict& b) {
                  return a.metric < b.metric;
              });
    return out;
}

std::vector<MetricVerdict> diff_profiles(const core::Profile& baseline,
                                         const core::Profile& current,
                                         const DriftOptions& options) {
    const std::map<std::string, double> old_metrics = profile_metrics(baseline);
    const std::map<std::string, double> new_metrics = profile_metrics(current);

    std::vector<MetricVerdict> out;
    for (const auto& [name, old_value] : old_metrics) {
        MetricVerdict verdict;
        verdict.metric = name;
        verdict.baseline = old_value;
        const auto it = new_metrics.find(name);
        if (it == new_metrics.end()) {
            verdict.value = kNaN;
            verdict.score = kNaN;
            verdict.verdict = Verdict::Confirmed;
        } else {
            verdict.value = it->second;
            verdict.score = drift_score(it->second, old_value, 0.0, options);
            verdict.verdict = verdict.score >= options.confirm_score ? Verdict::Confirmed
                              : verdict.score >= options.suspect_score ? Verdict::Suspect
                                                                       : Verdict::None;
        }
        out.push_back(std::move(verdict));
    }
    for (const auto& [name, new_value] : new_metrics) {
        if (old_metrics.count(name) != 0) continue;
        MetricVerdict verdict;
        verdict.metric = name;
        verdict.value = new_value;
        verdict.baseline = kNaN;
        verdict.score = kNaN;
        verdict.verdict = Verdict::Confirmed;
        out.push_back(std::move(verdict));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricVerdict& a, const MetricVerdict& b) {
                  return a.metric < b.metric;
              });
    return out;
}

}  // namespace servet::watch
