// MAD-based drift detection over profile metrics. A Servet profile is
// measured once and consulted forever (Section IV-E), but measured
// performance drifts — thermals, firmware updates, background load — and
// a stale profile silently mistunes every consumer. This header is the
// judgement layer of `servet watch`: it flattens a profile (or a watch
// sample) into named scalar metrics, scores each new value against a
// rolling baseline with the robust score |x - median| / MAD, and emits
// stable machine-readable verdicts:
//
//   drift.none       in band
//   drift.suspect    one out-of-band observation (could be a one-off)
//   drift.confirmed  far out of band, or out of band repeatedly
//
// The scale is floored at max(MAD, rel_floor*|median|, abs_floor): a
// deterministic simulator's baseline has MAD exactly 0, and a noiseless
// baseline must widen to a relative band rather than divide by zero.
// Everything here is pure arithmetic over already-measured values, so
// verdicts inherit the suite's determinism contract — a --jobs 4 watch
// judges identically to --jobs 1.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/profile.hpp"

namespace servet::watch {

enum class Verdict { None, Suspect, Confirmed };

/// Stable machine-readable code: "drift.none", "drift.suspect",
/// "drift.confirmed". Scripts and CI match on these, never on prose.
[[nodiscard]] const char* verdict_code(Verdict verdict);

/// The worse of two verdicts (None < Suspect < Confirmed).
[[nodiscard]] Verdict worse(Verdict a, Verdict b);

struct DriftOptions {
    /// Rolling baseline size per metric; older samples age out.
    std::size_t baseline_window = 8;
    /// Observations a metric's baseline needs before it is judged at all
    /// — the first ticks of a fresh watch are calibration, not drift.
    std::size_t min_baseline = 3;
    /// Robust score at which a single observation is Suspect. 4 is well
    /// clear of Gaussian noise (MAD is consistent with sigma).
    double suspect_score = 4.0;
    /// Robust score at which a single observation is Confirmed outright.
    double confirm_score = 16.0;
    /// Consecutive out-of-band (>= suspect) observations that escalate a
    /// Suspect metric to Confirmed even below confirm_score.
    int confirm_after = 2;
    /// Scale floor as a fraction of |baseline median|: a noiseless
    /// (MAD = 0) baseline still tolerates this relative deviation.
    double rel_floor = 0.01;
    /// Absolute scale floor, guarding metrics whose median is 0 too.
    double abs_floor = 1e-12;
};

/// One metric's judgement at one observation.
struct MetricVerdict {
    std::string metric;
    double value = 0;     ///< the observed value (NaN: absent from sample)
    double baseline = 0;  ///< baseline median it was judged against (NaN: absent)
    double score = 0;     ///< |value - baseline| / scale
    Verdict verdict = Verdict::None;
};

/// The robust score: |value - center| / max(spread, rel_floor*|center|,
/// abs_floor). `spread` is the baseline MAD (pass 0 for a single-point
/// baseline, e.g. profile-vs-profile diffs).
[[nodiscard]] double drift_score(double value, double center, double spread,
                                 const DriftOptions& options);

/// Flattens the measured quantities of a profile into named metrics:
/// cache.L<k>.size, memory.reference_bandwidth, memory.tier<t>.bandwidth,
/// comm.layer<l>.latency. Only sections the profile carries appear.
[[nodiscard]] std::map<std::string, double> profile_metrics(const core::Profile& profile);

/// Per-metric rolling-baseline detector. Feed it one sample (metric ->
/// value) per tick; it judges each metric against its own baseline, then
/// absorbs in-band values (only those — a drifted value must not drag
/// the baseline toward itself). Deterministic: same sample sequence,
/// same verdicts.
class DriftDetector {
  public:
    explicit DriftDetector(DriftOptions options = {});

    /// Judge one tick's sample. Returns one MetricVerdict per metric,
    /// sorted by metric name. A metric seen in earlier ticks but absent
    /// from this sample is Confirmed (a measurement that disappeared is
    /// drift of the strongest kind); a brand-new metric starts a fresh
    /// baseline with verdict None.
    std::vector<MetricVerdict> observe(const std::map<std::string, double>& sample);

    /// Worst verdict emitted over the detector's lifetime.
    [[nodiscard]] Verdict worst() const { return worst_; }

  private:
    struct Baseline {
        std::deque<double> values;
        int out_of_band = 0;  ///< consecutive >= suspect observations
    };

    DriftOptions options_;
    std::map<std::string, Baseline> baselines_;
    Verdict worst_ = Verdict::None;
};

/// Profile-vs-profile diff (`servet validate --against OLD.profile`):
/// judges every metric of `current` against `baseline` with the same
/// scoring and codes as the rolling detector, treating the old profile
/// as a single-point baseline (spread 0, so the rel_floor band applies).
/// Metrics present in only one profile are Confirmed, with the absent
/// side reported as NaN.
[[nodiscard]] std::vector<MetricVerdict> diff_profiles(const core::Profile& baseline,
                                                       const core::Profile& current,
                                                       const DriftOptions& options);

}  // namespace servet::watch
