#include "watch/watch.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "base/fs.hpp"
#include "base/hash.hpp"
#include "base/log.hpp"
#include "core/journal.hpp"
#include "msg/faulty_network.hpp"
#include "obs/metrics.hpp"
#include "platform/decorators.hpp"
#include "serve/client.hpp"
#include "stats/summary.hpp"

namespace servet::watch {

namespace {

std::string fmt_hexfloat(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

/// The metrics one tick contributes: the flattened profile plus summary
/// statistics of the raw mcalibrator curve. The curve statistics matter
/// because they see value shifts the structural detectors absorb — a
/// uniform cycle inflation leaves detected cache *sizes* unchanged while
/// the curve's level moves immediately.
std::map<std::string, double> sample_metrics(const core::SuiteResult& result,
                                             const Platform& platform) {
    const core::Profile profile = result.to_profile(
        platform.name(), platform.core_count(), platform.page_size());
    std::map<std::string, double> metrics = profile_metrics(profile);
    if (!result.curve.cycles.empty()) {
        const std::vector<double> cycles(result.curve.cycles.begin(),
                                         result.curve.cycles.end());
        metrics["mcal.cycles.median"] = stats::median(cycles);
        metrics["mcal.cycles.min"] = stats::min_value(cycles);
        metrics["mcal.cycles.max"] = stats::max_value(cycles);
    }
    return metrics;
}

std::string hex16(std::uint64_t value) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
    return buf;
}

/// Spool-and-drain publisher: every committed tick first lands as
/// `<run_dir>/spool/<tick-padded>.sample` (atomic write), then the spool
/// drains oldest-first through the retrying client. Padding the tick to
/// 10 digits makes the lexicographic listing the tick order AND keeps
/// the file stem a valid wire tick token, so the spool file name is the
/// URL segment — nothing to parse, nothing to disagree about after a
/// crash.
class SamplePusher {
  public:
    SamplePusher(const WatchOptions::PushOptions& push, const std::string& run_dir,
                 std::uint64_t fingerprint, std::uint64_t options_hash)
        : push_(push),
          spool_dir_(run_dir + "/spool"),
          fp_key_(hex16(fingerprint)),
          opts_key_(hex16(options_hash)) {}

    [[nodiscard]] bool enabled() const { return push_.port > 0; }

    /// Spools one tick's payload. Returns false when even the local
    /// spool write fails (disk trouble — the sample survives only in the
    /// series journal).
    [[nodiscard]] bool spool(std::size_t tick, const std::string& payload) {
        char stem[16];
        std::snprintf(stem, sizeof stem, "%010zu", tick);
        const std::string path = spool_dir_ + '/' + stem + ".sample";
        if (!create_parent_dirs(path) || !write_file_atomic(path, payload)) {
            SERVET_LOG_WARN("watch: cannot spool tick %zu under %s", tick,
                            spool_dir_.c_str());
            return false;
        }
        return true;
    }

    /// Pushes spooled samples oldest-first until the spool is empty or
    /// the server stops answering. Returns acknowledged count.
    std::size_t drain() {
        std::vector<std::string> names;
        if (!list_directory(spool_dir_, &names)) return 0;
        std::size_t acknowledged = 0;
        for (const std::string& name : names) {
            if (!name.ends_with(".sample")) continue;
            const std::string tick_token = name.substr(0, name.size() - 7);
            const std::string path = spool_dir_ + '/' + name;
            std::string payload;
            if (read_file(path, &payload) != FileRead::Ok) continue;

            serve::FetchOptions request;
            request.host = push_.host;
            request.port = push_.port;
            request.path = "/v1/series/" + fp_key_ + '/' + opts_key_ + '/' + tick_token;
            request.method = "PUT";
            request.body = payload;
            request.content_type = "text/plain";
            request.token = push_.token;
            request.timeout_seconds = push_.timeout_seconds;
            request.deadline_seconds = push_.deadline_seconds;
            // A per-tick sample PUT is content-addressed: replaying it
            // after a half-acknowledged attempt stores the same bytes.
            request.retry_unsafe = true;
            request.retry.max_attempts = push_.attempts < 1 ? 1 : push_.attempts;
            request.retry.seed = push_.seed;

            const serve::FetchResult result = serve::http_fetch(request);
            if (result.ok && result.response.status < 300) {
                (void)remove_file(path);
                ++acknowledged;
                continue;
            }
            if (result.ok && result.response.status != 503) {
                // The server answered and said no (bad token, bad key):
                // retrying the same bytes cannot succeed — drop the
                // sample rather than wedge every tick behind it. It is
                // still in the series journal.
                SERVET_LOG_WARN("watch: store rejected spooled tick %s with status %d; "
                                "dropping it from the spool",
                                tick_token.c_str(), result.response.status);
                (void)remove_file(path);
                continue;
            }
            SERVET_LOG_WARN("watch: push of tick %s failed (%s); %s",
                            tick_token.c_str(),
                            result.ok ? "503" : result.code.c_str(),
                            "keeping it spooled");
            break;  // server unreachable/shedding: later ticks wait too
        }
        return acknowledged;
    }

    /// Samples still spooled (what drain could not deliver).
    [[nodiscard]] std::size_t pending() const {
        std::vector<std::string> names;
        if (!list_directory(spool_dir_, &names)) return 0;
        std::size_t count = 0;
        for (const std::string& name : names)
            if (name.ends_with(".sample")) ++count;
        return count;
    }

  private:
    WatchOptions::PushOptions push_;
    std::string spool_dir_;
    std::string fp_key_;
    std::string opts_key_;
};

}  // namespace

std::uint64_t watch_options_hash(const WatchOptions& options) {
    Fingerprint fp;
    fp.add(std::string_view("watch-options 1"));
    fp.add(core::suite_options_hash(options.suite));
    fp.add(options.perturb_tick);
    fp.add(options.perturb.fingerprint());
    return fp.value();
}

std::string encode_sample(const std::map<std::string, double>& metrics) {
    std::string out;
    for (const auto& [name, value] : metrics)
        out += "metric " + name + ' ' + fmt_hexfloat(value) + '\n';
    return out;
}

std::optional<std::map<std::string, double>> decode_sample(const std::string& text) {
    std::map<std::string, double> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) nl = text.size();
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty()) continue;
        const std::size_t first = line.find(' ');
        const std::size_t second = line.find(' ', first + 1);
        if (first == std::string::npos || second == std::string::npos ||
            line.substr(0, first) != "metric")
            return std::nullopt;
        const std::string name = line.substr(first + 1, second - first - 1);
        const std::string value_text = line.substr(second + 1);
        char* end = nullptr;
        const double value = std::strtod(value_text.c_str(), &end);
        if (value_text.empty() || end != value_text.c_str() + value_text.size())
            return std::nullopt;
        if (!out.emplace(name, value).second) return std::nullopt;
    }
    return out;
}

WatchResult run_watch(Platform& platform, msg::Network* network,
                      const WatchOptions& options) {
    SERVET_CHECK_MSG(!options.run_dir.empty(), "watch requires a run directory");
    SERVET_CHECK_MSG(options.suite.run_dir.empty() && !options.suite.resume,
                     "the suite inside a watch never journals phases; the series "
                     "journal is the watch's persistence");
    SERVET_CHECK(options.ticks >= 0);

    core::SeriesJournal::Header header;
    header.options_hash = watch_options_hash(options);
    header.fingerprint = platform.fingerprint();
    header.machine = platform.name();
    header.cores = platform.core_count();
    header.page_size = platform.page_size();
    // Resume is the only mode a watch opens with: an absent series is a
    // fresh one, an existing compatible series seeds the baselines.
    core::SeriesJournal journal(options.run_dir, header, core::SeriesJournal::Mode::Resume);

    WatchResult result;
    result.dropped_torn_tail = journal.dropped_torn_tail();
    if (result.dropped_torn_tail)
        SERVET_LOG_WARN("watch: series in %s had a torn trailing record (crash "
                        "mid-tick); it was discarded and the tick re-measures",
                        options.run_dir.c_str());

    // Replay: committed samples pass through the detector exactly as they
    // did when measured, rebuilding the rolling baselines (and the worst
    // verdict) deterministically.
    DriftDetector detector(options.drift);
    for (std::size_t tick = 0; tick < journal.samples().size(); ++tick) {
        const auto metrics = decode_sample(journal.samples()[tick]);
        if (!metrics)
            throw core::JournalError("series journal in " + options.run_dir +
                                     " holds an undecodable sample at tick " +
                                     std::to_string(tick));
        TickReport report;
        report.tick = tick;
        report.replayed = true;
        report.verdicts = detector.observe(*metrics);
        result.reports.push_back(std::move(report));
        ++result.replayed;
    }
    if (result.replayed > 0)
        SERVET_LOG_INFO("watch: replayed %zu committed tick(s) from %s", result.replayed,
                        options.run_dir.c_str());

    // The perturbed substrate, built once and swapped in from the onset
    // tick: probability-1 plans shift every measured value by a fixed
    // factor, so drift in tests is deterministic — and fault decisions
    // key on task identity, not schedule, so parallel ≡ serial holds
    // through the perturbation (the PR that added the injectors tests
    // exactly that).
    std::unique_ptr<FlakyPlatform> perturbed_platform;
    std::unique_ptr<msg::FaultyNetwork> perturbed_network;
    const bool can_perturb = options.perturb_tick >= 0 && options.perturb.active();
    if (can_perturb) {
        if (options.perturb.any_platform_faults())
            perturbed_platform = std::make_unique<FlakyPlatform>(platform, options.perturb);
        if (network != nullptr && options.perturb.any_network_faults())
            perturbed_network =
                std::make_unique<msg::FaultyNetwork>(*network, options.perturb);
    }

    SamplePusher pusher(options.push, options.run_dir, header.fingerprint,
                        header.options_hash);
    const auto stop_requested = [&options] {
        return options.stop != nullptr && options.stop->load(std::memory_order_acquire);
    };

    for (int i = 0; i < options.ticks; ++i) {
        if (stop_requested()) {
            result.stopped = true;
            break;
        }
        const std::size_t tick = journal.samples().size();
        const bool perturb = can_perturb &&
                             tick >= static_cast<std::size_t>(options.perturb_tick);
        Platform& tick_platform =
            perturb && perturbed_platform ? *perturbed_platform : platform;
        msg::Network* tick_network =
            perturb && perturbed_network ? perturbed_network.get() : network;

        core::SuiteOptions suite = options.suite;
        const core::SuiteResult measured = run_suite(tick_platform, tick_network, suite);
        for (const core::PhaseError& error : measured.errors)
            SERVET_LOG_WARN("watch: tick %zu phase %s failed: %s", tick,
                            error.phase.c_str(), error.message.c_str());

        const std::map<std::string, double> metrics = sample_metrics(measured, platform);
        const std::string payload = encode_sample(metrics);
        if (!journal.append(payload))
            SERVET_LOG_ERROR("watch: cannot commit tick %zu to %s; this tick loses "
                             "crash protection",
                             tick, options.run_dir.c_str());
        if (!options.series_json.empty() &&
            !obs::write_metrics_series_json(options.series_json, tick, header.fingerprint))
            SERVET_LOG_WARN("watch: cannot append tick %zu to metrics series %s", tick,
                            options.series_json.c_str());
        if (pusher.enabled()) {
            // Spool first, then drain: one code path whether the server
            // is up (the fresh tick drains immediately, after anything
            // an outage left behind) or down (it just stays spooled).
            (void)pusher.spool(tick, payload);
            result.pushed += pusher.drain();
        }

        TickReport report;
        report.tick = tick;
        report.verdicts = detector.observe(metrics);
        result.reports.push_back(std::move(report));
        ++result.measured;

        if (options.interval_seconds > 0 && i + 1 < options.ticks) {
            // Sliced sleep so a --daemon SIGTERM ends the wait promptly
            // instead of after a full interval.
            const auto until = std::chrono::steady_clock::now() +
                               std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(
                                       options.interval_seconds));
            while (!stop_requested() && std::chrono::steady_clock::now() < until)
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
            if (stop_requested()) {
                result.stopped = true;
                break;
            }
        }
    }

    if (pusher.enabled()) result.spooled = pusher.pending();
    result.worst = detector.worst();
    return result;
}

}  // namespace servet::watch
