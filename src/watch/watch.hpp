// Continuous profiling: `servet watch` re-measures a designated fast
// subset of the suite periodically, commits every tick's metrics to an
// append-only time-series journal under --run-dir (core/journal.hpp's
// framed-record format, `sample` record kind), and judges each tick
// against a rolling baseline with the MAD-based detector in
// watch/drift.hpp. The loop is crash-safe by construction — a watch
// killed mid-tick loses only the in-flight sample (torn tail discarded
// on the next open) and resumes at the next tick with its baselines
// rebuilt by replaying the committed samples through the detector — and
// deterministic end to end on simulated platforms: samples carry no wall
// clock (the tick index is the time axis), doubles travel as hexfloats,
// and measured values are schedule-invariant, so a --jobs 4 watch writes
// a byte-identical series to --jobs 1.
//
// Drift is driven deterministically in tests and CI by perturbing the
// measurement substrate mid-watch: from `perturb_tick` on, the platform
// and network are wrapped in the fault injectors (FlakyPlatform /
// FaultyNetwork) with the given plan — a probability-1 spike/delay plan
// shifts every measured value by a fixed factor, reproducibly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/fault_plan.hpp"
#include "core/suite.hpp"
#include "msg/network.hpp"
#include "platform/platform.hpp"
#include "watch/drift.hpp"

namespace servet::watch {

struct WatchOptions {
    /// Suite configuration of the re-measured subset. The caller chooses
    /// the phases (run_* flags); run_dir/resume must stay unset here —
    /// each tick is a fresh measurement, and the series journal below is
    /// the watch's own persistence.
    core::SuiteOptions suite;
    /// Directory holding the series journal (required).
    std::string run_dir;
    /// New ticks to measure in this invocation (committed samples from a
    /// previous watch in the same run_dir replay first and only seed the
    /// baselines — they do not count against this budget).
    int ticks = 1;
    /// Sleep between ticks in seconds (0 = back-to-back; tests and CI).
    double interval_seconds = 0;
    /// From this global tick index on, measure through the fault
    /// injectors configured by `perturb` (-1 = never). Deterministic
    /// drift for tests and the CI drift-smoke job.
    int perturb_tick = -1;
    FaultPlan perturb;
    DriftOptions drift;
    /// When non-empty, append one JSON line per tick (obs metrics
    /// registry, fingerprint-tagged) to this file — the fleet-aggregator
    /// feed (obs::write_metrics_series_json).
    std::string series_json;

    /// Cooperative stop flag (`--daemon`'s SIGTERM/SIGINT handlers flip
    /// it): checked before each tick and while sleeping an interval. The
    /// in-flight tick always finishes — its sample is committed and
    /// fsync'd — so a signalled watch exits with an intact, resumable
    /// series journal.
    const std::atomic<bool>* stop = nullptr;

    /// Publication of committed ticks to a `servet serve` store
    /// (`PUT /v1/series/<fp>/<opts>/<tick>` through the retrying
    /// client). Every tick is first spooled under `<run_dir>/spool`,
    /// then the spool drains in tick order; whatever the server did not
    /// acknowledge stays spooled for the next tick (or the next watch) —
    /// a dead server degrades the watch to local-only, it never fails it.
    struct PushOptions {
        std::string host = "127.0.0.1";  ///< numeric IPv4 address
        int port = 0;                    ///< 0 = pushing disabled
        std::string token;               ///< serve's shared-secret token
        double timeout_seconds = 5.0;    ///< per socket operation
        double deadline_seconds = 30.0;  ///< per PUT, attempts included
        int attempts = 3;                ///< retry budget per PUT
        std::uint64_t seed = 0x5eedULL;  ///< backoff jitter seed
    };
    PushOptions push;
};

/// One tick's judgement.
struct TickReport {
    std::size_t tick = 0;
    /// Per-metric verdicts, sorted by metric name.
    std::vector<MetricVerdict> verdicts;
    /// True when this tick was replayed from the series journal (resume)
    /// rather than measured by this invocation.
    bool replayed = false;
};

struct WatchResult {
    std::vector<TickReport> reports;
    /// Worst verdict over every tick, replayed and fresh.
    Verdict worst = Verdict::None;
    std::size_t replayed = 0;  ///< ticks restored from the series journal
    std::size_t measured = 0;  ///< ticks measured by this invocation
    /// The series journal had a torn trailing record (crash mid-tick).
    bool dropped_torn_tail = false;
    /// The stop flag ended the loop before the tick budget ran out.
    bool stopped = false;
    std::size_t pushed = 0;   ///< samples the store acknowledged
    std::size_t spooled = 0;  ///< samples still spooled at exit
};

/// Identity hash of a watch configuration, stored in the series journal
/// header: the suite options hash plus everything else that changes
/// measured values (the perturbation plan and its onset tick).
/// Scheduling knobs — jobs, ticks, interval, drift thresholds — are
/// excluded: a series may legally be resumed with more ticks, different
/// parallelism, or re-judged under new thresholds.
[[nodiscard]] std::uint64_t watch_options_hash(const WatchOptions& options);

/// Encode one tick's metrics as a journal sample payload ("metric <name>
/// <%a-value>" lines; bit-exact round-trip). Exposed for tests.
[[nodiscard]] std::string encode_sample(const std::map<std::string, double>& metrics);
[[nodiscard]] std::optional<std::map<std::string, double>> decode_sample(
    const std::string& text);

/// Run the watch loop: resume the series journal under run_dir, replay
/// committed samples through the drift detector, then measure and commit
/// `ticks` new samples. Throws core::JournalError when the existing
/// series is incompatible with this configuration (different options
/// hash or machine identity).
[[nodiscard]] WatchResult run_watch(Platform& platform, msg::Network* network,
                                    const WatchOptions& options);

}  // namespace servet::watch
