// Continuous profiling: `servet watch` re-measures a designated fast
// subset of the suite periodically, commits every tick's metrics to an
// append-only time-series journal under --run-dir (core/journal.hpp's
// framed-record format, `sample` record kind), and judges each tick
// against a rolling baseline with the MAD-based detector in
// watch/drift.hpp. The loop is crash-safe by construction — a watch
// killed mid-tick loses only the in-flight sample (torn tail discarded
// on the next open) and resumes at the next tick with its baselines
// rebuilt by replaying the committed samples through the detector — and
// deterministic end to end on simulated platforms: samples carry no wall
// clock (the tick index is the time axis), doubles travel as hexfloats,
// and measured values are schedule-invariant, so a --jobs 4 watch writes
// a byte-identical series to --jobs 1.
//
// Drift is driven deterministically in tests and CI by perturbing the
// measurement substrate mid-watch: from `perturb_tick` on, the platform
// and network are wrapped in the fault injectors (FlakyPlatform /
// FaultyNetwork) with the given plan — a probability-1 spike/delay plan
// shifts every measured value by a fixed factor, reproducibly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/fault_plan.hpp"
#include "core/suite.hpp"
#include "msg/network.hpp"
#include "platform/platform.hpp"
#include "watch/drift.hpp"

namespace servet::watch {

struct WatchOptions {
    /// Suite configuration of the re-measured subset. The caller chooses
    /// the phases (run_* flags); run_dir/resume must stay unset here —
    /// each tick is a fresh measurement, and the series journal below is
    /// the watch's own persistence.
    core::SuiteOptions suite;
    /// Directory holding the series journal (required).
    std::string run_dir;
    /// New ticks to measure in this invocation (committed samples from a
    /// previous watch in the same run_dir replay first and only seed the
    /// baselines — they do not count against this budget).
    int ticks = 1;
    /// Sleep between ticks in seconds (0 = back-to-back; tests and CI).
    double interval_seconds = 0;
    /// From this global tick index on, measure through the fault
    /// injectors configured by `perturb` (-1 = never). Deterministic
    /// drift for tests and the CI drift-smoke job.
    int perturb_tick = -1;
    FaultPlan perturb;
    DriftOptions drift;
    /// When non-empty, append one JSON line per tick (obs metrics
    /// registry, fingerprint-tagged) to this file — the fleet-aggregator
    /// feed (obs::write_metrics_series_json).
    std::string series_json;
};

/// One tick's judgement.
struct TickReport {
    std::size_t tick = 0;
    /// Per-metric verdicts, sorted by metric name.
    std::vector<MetricVerdict> verdicts;
    /// True when this tick was replayed from the series journal (resume)
    /// rather than measured by this invocation.
    bool replayed = false;
};

struct WatchResult {
    std::vector<TickReport> reports;
    /// Worst verdict over every tick, replayed and fresh.
    Verdict worst = Verdict::None;
    std::size_t replayed = 0;  ///< ticks restored from the series journal
    std::size_t measured = 0;  ///< ticks measured by this invocation
    /// The series journal had a torn trailing record (crash mid-tick).
    bool dropped_torn_tail = false;
};

/// Identity hash of a watch configuration, stored in the series journal
/// header: the suite options hash plus everything else that changes
/// measured values (the perturbation plan and its onset tick).
/// Scheduling knobs — jobs, ticks, interval, drift thresholds — are
/// excluded: a series may legally be resumed with more ticks, different
/// parallelism, or re-judged under new thresholds.
[[nodiscard]] std::uint64_t watch_options_hash(const WatchOptions& options);

/// Encode one tick's metrics as a journal sample payload ("metric <name>
/// <%a-value>" lines; bit-exact round-trip). Exposed for tests.
[[nodiscard]] std::string encode_sample(const std::map<std::string, double>& metrics);
[[nodiscard]] std::optional<std::map<std::string, double>> decode_sample(
    const std::string& text);

/// Run the watch loop: resume the series journal under run_dir, replay
/// committed samples through the drift detector, then measure and commit
/// `ticks` new samples. Throws core::JournalError when the existing
/// series is incompatible with this configuration (different options
/// hash or machine identity).
[[nodiscard]] WatchResult run_watch(Platform& platform, msg::Network* network,
                                    const WatchOptions& options);

}  // namespace servet::watch
