// Least-squares fits for communication modelling. The comm-costs benchmark
// characterizes each layer with a piecewise-linear latency model in the
// Hockney spirit (t = L0 + size/BW per protocol region), and the scalability
// analysis fits a power law penalty(n) = a * n^b to concurrent-message
// slowdowns.
#pragma once

#include <cstddef>
#include <vector>

namespace servet::stats {

struct LinearFit {
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;  ///< coefficient of determination

    [[nodiscard]] double at(double x) const { return intercept + slope * x; }
};

/// Ordinary least squares y = intercept + slope*x. Requires >= 2 points and
/// non-constant x.
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

struct PowerFit {
    double scale = 1.0;     ///< a in y = a * x^b
    double exponent = 0.0;  ///< b
    double r2 = 0.0;

    [[nodiscard]] double at(double x) const;
};

/// Fit y = a*x^b by OLS in log-log space. Requires all x, y > 0.
[[nodiscard]] PowerFit power_fit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace servet::stats
