// Binomial distribution, exactly as used by the probabilistic cache-size
// estimator of Section III-A2: with NP pages accessed and a K-way cache of
// size CS divided into CS/(K*PS) page sets, the pages landing in one page
// set follow X ~ B(NP, (K*PS)/CS) and the expected miss rate is P(X > K).
#pragma once

#include <cstdint>

namespace servet::stats {

/// P(X > k) for X ~ Binomial(n, p).
///
/// Computed as 1 - CDF(k) with term-by-term evaluation in log space, so it
/// stays accurate for the large n (thousands of pages) and tiny p (one page
/// set among hundreds) that the cache estimator produces. Preconditions:
/// n >= 0, 0 <= p <= 1.
[[nodiscard]] double binomial_tail_above(std::int64_t n, double p, std::int64_t k);

/// P(X = k) for X ~ Binomial(n, p).
[[nodiscard]] double binomial_pmf(std::int64_t n, double p, std::int64_t k);

/// Mean n*p — trivially, but keeps call sites self-describing.
[[nodiscard]] inline double binomial_mean(std::int64_t n, double p) {
    return static_cast<double>(n) * p;
}

/// ln(n choose k) via lgamma; exposed for tests.
[[nodiscard]] double log_binomial_coefficient(std::int64_t n, std::int64_t k);

}  // namespace servet::stats
