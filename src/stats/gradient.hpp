// Gradient and peak detection over mcalibrator outputs (Section III-A1,
// Fig. 2b). The "gradient" is the paper's ratio C[k+1]/C[k]: a sharp rise in
// per-access cycles shows up as a peak in this ratio, and the first peak
// marks the L1 capacity.
#pragma once

#include <cstddef>
#include <vector>

namespace servet::stats {

/// g[k] = c[k+1] / c[k] for 0 <= k < n-1. Requires all c > 0.
[[nodiscard]] std::vector<double> ratio_gradient(const std::vector<double>& c);

struct Peak {
    std::size_t first = 0;   ///< index of first gradient sample in the peak
    std::size_t last = 0;    ///< index of last gradient sample in the peak
    std::size_t apex = 0;    ///< index of the maximum gradient within it
    double apex_value = 1.0;

    /// A peak confined to one sample — the page-coloring / virtually-indexed
    /// signature (Fig. 4: "peak related only to a single array size").
    [[nodiscard]] bool single_sample() const { return first == last; }
};

/// Find maximal runs of gradient samples above `threshold`, each reported as
/// one Peak. The paper's algorithm (Fig. 4) branches on whether a peak spans
/// one array size (use its position directly) or several (run the
/// probabilistic estimator over the run).
[[nodiscard]] std::vector<Peak> find_peaks(const std::vector<double>& gradient,
                                           double threshold);

}  // namespace servet::stats
