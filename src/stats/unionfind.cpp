#include "stats/unionfind.hpp"

#include <algorithm>
#include <map>

#include "base/check.hpp"

namespace servet::stats {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_size_(n, 1), set_count_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
    SERVET_CHECK(x < parent_.size());
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];  // path halving
        x = parent_[x];
    }
    return x;
}

bool UnionFind::unite(std::size_t x, std::size_t y) {
    std::size_t rx = find(x);
    std::size_t ry = find(y);
    if (rx == ry) return false;
    if (rank_size_[rx] < rank_size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    rank_size_[rx] += rank_size_[ry];
    --set_count_;
    return true;
}

bool UnionFind::connected(std::size_t x, std::size_t y) { return find(x) == find(y); }

std::vector<std::vector<std::size_t>> UnionFind::components() {
    std::map<std::size_t, std::vector<std::size_t>> by_root;
    for (std::size_t i = 0; i < parent_.size(); ++i) by_root[find(i)].push_back(i);
    std::vector<std::vector<std::size_t>> result;
    result.reserve(by_root.size());
    for (auto& [root, members] : by_root) result.push_back(std::move(members));
    // by_root is keyed by root id, but we want deterministic order by the
    // smallest member (members are already sorted since we insert 0..n-1).
    std::sort(result.begin(), result.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return result;
}

std::vector<std::vector<CoreId>> groups_from_pairs(const std::vector<CorePair>& pairs,
                                                   int n_cores) {
    SERVET_CHECK(n_cores >= 0);
    UnionFind uf(static_cast<std::size_t>(n_cores));
    for (const CorePair& pair : pairs) {
        SERVET_CHECK(pair.a >= 0 && pair.a < n_cores && pair.b >= 0 && pair.b < n_cores);
        uf.unite(static_cast<std::size_t>(pair.a), static_cast<std::size_t>(pair.b));
    }
    std::vector<std::vector<CoreId>> groups;
    for (const auto& component : uf.components()) {
        if (component.size() < 2) continue;  // no edge ⇒ not a group
        std::vector<CoreId> group;
        group.reserve(component.size());
        for (std::size_t member : component) group.push_back(static_cast<CoreId>(member));
        groups.push_back(std::move(group));
    }
    return groups;
}

}  // namespace servet::stats
