// Similarity clustering for measured values. This is the grouping step the
// paper applies verbatim in Figures 6 and 7: walk the measurements, and for
// each value either attach it to an existing cluster whose representative is
// "similar", or open a new cluster. Two values are similar when they differ
// by at most `tolerance` relatively.
#pragma once

#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace servet::stats {

struct Cluster {
    double representative = 0.0;        ///< running mean of members
    std::vector<std::size_t> members;   ///< indices into the input sequence
};

class SimilarityClusterer {
  public:
    /// tolerance is relative: |v - rep| <= tolerance * max(|v|, |rep|).
    explicit SimilarityClusterer(double tolerance);

    /// Assign value (with caller-side index `tag`) to a cluster; returns the
    /// cluster index. Representative is updated to the members' mean, so
    /// clusters track drift without splitting on measurement noise.
    std::size_t add(double value, std::size_t tag);

    [[nodiscard]] const std::vector<Cluster>& clusters() const { return clusters_; }
    [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }

    [[nodiscard]] bool similar(double a, double b) const;

  private:
    double tolerance_;
    std::vector<Cluster> clusters_;
    std::vector<double> sums_;  // per-cluster sum, for exact means
};

/// One-shot convenience: cluster `values`; result[i] = cluster id of value i.
[[nodiscard]] std::vector<std::size_t> cluster_by_similarity(const std::vector<double>& values,
                                                             double tolerance);

}  // namespace servet::stats
