#include "stats/cluster.hpp"

#include <cmath>

#include "base/check.hpp"

namespace servet::stats {

SimilarityClusterer::SimilarityClusterer(double tolerance) : tolerance_(tolerance) {
    SERVET_CHECK_MSG(tolerance >= 0.0 && tolerance < 1.0, "tolerance must be in [0, 1)");
}

bool SimilarityClusterer::similar(double a, double b) const {
    const double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= tolerance_ * scale;
}

std::size_t SimilarityClusterer::add(double value, std::size_t tag) {
    // Pick the closest similar cluster, not merely the first, so ordering of
    // inputs cannot glue two distinct tiers together through a borderline
    // sample.
    std::size_t best = clusters_.size();
    double best_distance = 0.0;
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
        if (!similar(value, clusters_[i].representative)) continue;
        const double distance = std::abs(value - clusters_[i].representative);
        if (best == clusters_.size() || distance < best_distance) {
            best = i;
            best_distance = distance;
        }
    }
    if (best == clusters_.size()) {
        clusters_.push_back(Cluster{value, {tag}});
        sums_.push_back(value);
        return clusters_.size() - 1;
    }
    Cluster& cluster = clusters_[best];
    cluster.members.push_back(tag);
    sums_[best] += value;
    cluster.representative = sums_[best] / static_cast<double>(cluster.members.size());
    return best;
}

std::vector<std::size_t> cluster_by_similarity(const std::vector<double>& values,
                                               double tolerance) {
    SimilarityClusterer clusterer(tolerance);
    std::vector<std::size_t> assignment;
    assignment.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) assignment.push_back(clusterer.add(values[i], i));
    return assignment;
}

}  // namespace servet::stats
