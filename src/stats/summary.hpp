// Robust summary statistics. Measurement repetition in the suite reduces
// via median (outlier-immune: one descheduled run must not shift a cycle
// estimate), and the probabilistic cache estimator takes the statistical
// mode of its top candidates (Fig. 3: "the statistical mode of CS using the
// five elements of div with the lowest values").
#pragma once

#include <cstdint>
#include <vector>

namespace servet::stats {

/// Median (average of the two central elements for even sizes). Input is
/// copied; empty input or any non-finite element is a precondition
/// violation (NaN under nth_element is undefined behaviour — callers
/// screen samples first, as the adaptive robust sampler does).
[[nodiscard]] double median(std::vector<double> values);

/// Median absolute deviation (scaled by 1.4826 to be consistent with the
/// standard deviation under normality). Same finiteness precondition as
/// median.
[[nodiscard]] double mad(std::vector<double> values);

/// Arithmetic mean. Empty input is a precondition violation.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Minimum / maximum. Empty input is a precondition violation.
[[nodiscard]] double min_value(const std::vector<double>& values);
[[nodiscard]] double max_value(const std::vector<double>& values);

/// Statistical mode over integral candidates. Ties break toward the value
/// that appears *earliest* in the input — for the cache estimator that is
/// the candidate with the lowest divergence, matching the paper's intent of
/// preferring the best-fitting size.
[[nodiscard]] std::uint64_t mode(const std::vector<std::uint64_t>& values);

}  // namespace servet::stats
