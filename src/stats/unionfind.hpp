// Disjoint-set structure used to turn pair lists into core groups. The
// paper (Section III-C) derives groups from overhead pair lists — e.g. the
// pairs (0,1),(0,2),(3,4),(3,5) yield groups {0,1,2} and {3,4,5} — which is
// precisely connected components over the pair graph.
#pragma once

#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace servet::stats {

class UnionFind {
  public:
    explicit UnionFind(std::size_t n);

    /// Representative of x's set (with path halving).
    [[nodiscard]] std::size_t find(std::size_t x);

    /// Union by size; returns true when the sets were distinct.
    bool unite(std::size_t x, std::size_t y);

    [[nodiscard]] bool connected(std::size_t x, std::size_t y);
    [[nodiscard]] std::size_t set_count() const { return set_count_; }
    [[nodiscard]] std::size_t size() const { return parent_.size(); }

    /// All components as sorted member lists, singletons included, ordered
    /// by smallest member.
    [[nodiscard]] std::vector<std::vector<std::size_t>> components();

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> rank_size_;
    std::size_t set_count_;
};

/// The paper's derivation: connected components of the pair graph restricted
/// to components with at least one edge (isolated cores are not part of any
/// overhead/sharing group).
[[nodiscard]] std::vector<std::vector<CoreId>> groups_from_pairs(
    const std::vector<CorePair>& pairs, int n_cores);

}  // namespace servet::stats
