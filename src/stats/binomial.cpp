#include "stats/binomial.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace servet::stats {

double log_binomial_coefficient(std::int64_t n, std::int64_t k) {
    SERVET_CHECK(n >= 0 && k >= 0 && k <= n);
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::int64_t n, double p, std::int64_t k) {
    SERVET_CHECK(n >= 0 && p >= 0.0 && p <= 1.0);
    if (k < 0 || k > n) return 0.0;
    if (p == 0.0) return k == 0 ? 1.0 : 0.0;
    if (p == 1.0) return k == n ? 1.0 : 0.0;
    const double log_pmf = log_binomial_coefficient(n, k) +
                           static_cast<double>(k) * std::log(p) +
                           static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

double binomial_tail_above(std::int64_t n, double p, std::int64_t k) {
    SERVET_CHECK(n >= 0 && p >= 0.0 && p <= 1.0);
    if (k < 0) return 1.0;
    if (k >= n) return 0.0;
    if (p == 0.0) return 0.0;
    if (p == 1.0) return 1.0;

    // Sum the smaller side for accuracy, then complement if needed.
    const double mean = binomial_mean(n, p);
    if (static_cast<double>(k) + 1.0 > mean) {
        // Tail above k is the small side: sum P(X = j), j = k+1..n, stopping
        // once terms no longer contribute.
        double sum = 0.0;
        double term = binomial_pmf(n, p, k + 1);
        sum += term;
        for (std::int64_t j = k + 2; j <= n && term > 0.0; ++j) {
            // Ratio recurrence: P(j)/P(j-1) = (n-j+1)/j * p/(1-p).
            term *= static_cast<double>(n - j + 1) / static_cast<double>(j) * (p / (1.0 - p));
            sum += term;
            if (term < sum * 1e-16) break;
        }
        return std::min(sum, 1.0);
    }
    // CDF(k) is the small side.
    double sum = 0.0;
    double term = binomial_pmf(n, p, 0);
    sum += term;
    for (std::int64_t j = 1; j <= k; ++j) {
        term *= static_cast<double>(n - j + 1) / static_cast<double>(j) * (p / (1.0 - p));
        sum += term;
    }
    return std::clamp(1.0 - sum, 0.0, 1.0);
}

}  // namespace servet::stats
