#include "stats/linfit.hpp"

#include <cmath>

#include "base/check.hpp"

namespace servet::stats {

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
    SERVET_CHECK(x.size() == y.size() && x.size() >= 2);
    const double n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    SERVET_CHECK_MSG(denom != 0.0, "x values must not be constant");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double mean_y = sy / n;
    double ss_res = 0, ss_tot = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = y[i] - fit.at(x[i]);
        ss_res += r * r;
        const double d = y[i] - mean_y;
        ss_tot += d * d;
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

double PowerFit::at(double x) const { return scale * std::pow(x, exponent); }

PowerFit power_fit(const std::vector<double>& x, const std::vector<double>& y) {
    SERVET_CHECK(x.size() == y.size() && x.size() >= 2);
    std::vector<double> lx, ly;
    lx.reserve(x.size());
    ly.reserve(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        SERVET_CHECK_MSG(x[i] > 0 && y[i] > 0, "power_fit requires positive data");
        lx.push_back(std::log(x[i]));
        ly.push_back(std::log(y[i]));
    }
    const LinearFit log_fit = linear_fit(lx, ly);
    PowerFit fit;
    fit.scale = std::exp(log_fit.intercept);
    fit.exponent = log_fit.slope;
    fit.r2 = log_fit.r2;
    return fit;
}

}  // namespace servet::stats
