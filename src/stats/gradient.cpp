#include "stats/gradient.hpp"

#include "base/check.hpp"

namespace servet::stats {

std::vector<double> ratio_gradient(const std::vector<double>& c) {
    std::vector<double> g;
    if (c.size() < 2) return g;
    g.reserve(c.size() - 1);
    for (std::size_t k = 0; k + 1 < c.size(); ++k) {
        SERVET_CHECK_MSG(c[k] > 0.0, "cycle counts must be positive");
        g.push_back(c[k + 1] / c[k]);
    }
    return g;
}

std::vector<Peak> find_peaks(const std::vector<double>& gradient, double threshold) {
    std::vector<Peak> peaks;
    std::size_t i = 0;
    while (i < gradient.size()) {
        if (gradient[i] <= threshold) {
            ++i;
            continue;
        }
        Peak peak;
        peak.first = i;
        peak.apex = i;
        peak.apex_value = gradient[i];
        while (i < gradient.size() && gradient[i] > threshold) {
            if (gradient[i] > peak.apex_value) {
                peak.apex = i;
                peak.apex_value = gradient[i];
            }
            ++i;
        }
        peak.last = i - 1;
        peaks.push_back(peak);
    }
    return peaks;
}

}  // namespace servet::stats
