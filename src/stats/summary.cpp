#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/check.hpp"

namespace servet::stats {

double median(std::vector<double> values) {
    SERVET_CHECK(!values.empty());
    // NaN breaks nth_element's strict weak ordering (undefined behaviour,
    // not just a wrong answer) and any non-finite sample means the
    // measurement layer failed to screen its inputs — fail loudly.
    for (const double v : values)
        SERVET_CHECK_MSG(std::isfinite(v), "median: non-finite input sample");
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.end());
    const double upper = values[mid];
    if (values.size() % 2 == 1) return upper;
    const double lower =
        *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lower + upper);
}

double mad(std::vector<double> values) {
    SERVET_CHECK(!values.empty());
    const double m = median(values);  // also screens non-finite inputs
    for (double& v : values) v = std::abs(v - m);
    return 1.4826 * median(std::move(values));
}

double mean(const std::vector<double>& values) {
    SERVET_CHECK(!values.empty());
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

double min_value(const std::vector<double>& values) {
    SERVET_CHECK(!values.empty());
    return *std::min_element(values.begin(), values.end());
}

double max_value(const std::vector<double>& values) {
    SERVET_CHECK(!values.empty());
    return *std::max_element(values.begin(), values.end());
}

std::uint64_t mode(const std::vector<std::uint64_t>& values) {
    SERVET_CHECK(!values.empty());
    std::map<std::uint64_t, std::size_t> counts;
    for (std::uint64_t v : values) ++counts[v];

    std::size_t best_count = 0;
    std::uint64_t best_value = values.front();
    // Scan in input order so ties resolve to the earliest-seen value.
    for (std::uint64_t v : values) {
        const std::size_t c = counts[v];
        if (c > best_count) {
            best_count = c;
            best_value = v;
        }
    }
    return best_value;
}

}  // namespace servet::stats
