// A small executable message-passing world: N ranks with mailbox
// endpoints, blocking and nonblocking point-to-point transfers, and a
// barrier — enough to *run* the communication patterns the suite measures
// and the advisors schedule (the MPI role in the paper's setup). Used by
// the executable collectives (exec_collectives.hpp) and available to
// applications adopting the library on a shared-memory node.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "msg/mailbox.hpp"

namespace servet::msg {

class CommWorld;

/// A rank's handle into the world. Cheap to copy; thread-compatible (one
/// thread drives one endpoint, the usual rank-per-thread discipline).
class Endpoint {
  public:
    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] int world_size() const;

    /// Buffered eager send: copies the payload out immediately.
    void send(int destination, std::span<const std::uint8_t> payload);

    /// Blocking receive from a specific source.
    void recv(int source, std::vector<std::uint8_t>& out);

    /// Nonblocking receive; true when a message was consumed.
    [[nodiscard]] bool try_recv(int source, std::vector<std::uint8_t>& out);

    /// Block until every rank has entered the same barrier epoch.
    void barrier();

  private:
    friend class CommWorld;
    Endpoint(CommWorld* world, int rank) : world_(world), rank_(rank) {}

    CommWorld* world_;
    int rank_;
};

class CommWorld {
  public:
    explicit CommWorld(int ranks);

    [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }
    [[nodiscard]] Endpoint endpoint(int rank);

  private:
    friend class Endpoint;

    std::vector<std::unique_ptr<Mailbox>> mailboxes_;

    // Sense-reversing barrier.
    std::mutex barrier_mutex_;
    std::condition_variable barrier_cv_;
    int barrier_waiting_ = 0;
    std::uint64_t barrier_epoch_ = 0;
};

}  // namespace servet::msg
