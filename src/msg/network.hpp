// Communication substrate interface for the comm-costs benchmark
// (Section III-D). The paper measures MPI point-to-point transfers between
// processes pinned to specific cores; this interface exposes exactly the
// observables that benchmark needs — isolated one-way latency between two
// pinned endpoints, and per-message latency when several pairs transfer at
// once. ThreadNetwork measures a real in-process transport; SimNetwork
// evaluates the interconnect model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace servet::msg {

class Network {
  public:
    virtual ~Network() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Stable content hash of the modeled fabric, or 0 when the network
    /// is not content-addressable (a real transport). Mirrors
    /// Platform::fingerprint.
    [[nodiscard]] virtual std::uint64_t fingerprint() const { return 0; }

    /// Whether fork() produces replicas, without the cost of building and
    /// discarding one. Mirrors Platform::forkable; must agree with fork().
    [[nodiscard]] virtual bool forkable() const { return false; }

    /// Independent replica for one measurement task, seeded by
    /// `noise_salt` (derived from a stable task key), or nullptr when the
    /// transport cannot be replicated. Mirrors Platform::fork.
    [[nodiscard]] virtual std::unique_ptr<Network> fork(std::uint64_t noise_salt) const {
        (void)noise_salt;
        return nullptr;
    }

    /// Number of endpoints (== cores; endpoint i is pinned to core i).
    [[nodiscard]] virtual int endpoint_count() const = 0;

    /// One-way latency of a `size`-byte message between the pair, measured
    /// by `reps` ping-pong round trips with nothing else in flight.
    [[nodiscard]] virtual Seconds pingpong_latency(CorePair pair, Bytes size, int reps) = 0;

    /// Per-pair one-way latency when every listed pair transfers
    /// concurrently (the scalability probe of Fig. 10b). Vertex-disjoint
    /// pairs give the most faithful native measurements; implementations
    /// accept overlapping pairs (a core sending and receiving at once)
    /// and account for them as concurrent traffic. Result is aligned with
    /// `pairs`.
    [[nodiscard]] virtual std::vector<Seconds> concurrent_latency(
        const std::vector<CorePair>& pairs, Bytes size, int reps) = 0;
};

}  // namespace servet::msg
