// Network over the interconnect model, with the machine's deterministic
// measurement jitter applied per measurement.
#pragma once

#include <vector>

#include "base/rng.hpp"
#include "msg/network.hpp"
#include "obs/metrics.hpp"
#include "sim/interconnect.hpp"

namespace servet::msg {

class SimNetwork final : public Network {
  public:
    /// Takes its own copy of the spec: temporaries are safe.
    explicit SimNetwork(sim::MachineSpec spec);
    /// Replica constructor: same fabric, private noise stream.
    SimNetwork(sim::MachineSpec spec, std::uint64_t noise_seed);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint64_t fingerprint() const override;
    [[nodiscard]] bool forkable() const override { return true; }
    [[nodiscard]] std::unique_ptr<Network> fork(std::uint64_t noise_salt) const override;
    [[nodiscard]] int endpoint_count() const override;
    [[nodiscard]] Seconds pingpong_latency(CorePair pair, Bytes size, int reps) override;
    [[nodiscard]] std::vector<Seconds> concurrent_latency(const std::vector<CorePair>& pairs,
                                                          Bytes size, int reps) override;

    [[nodiscard]] const sim::InterconnectModel& model() const { return model_; }

  private:
    /// Credits `2 * reps` simulated transfers of `size` bytes on `pair`'s
    /// layer to the msg.* counters.
    void count_transfers(CorePair pair, Bytes size, int reps);

    sim::MachineSpec spec_;
    sim::InterconnectModel model_;  // references spec_; declared after it
    Rng noise_;
    std::vector<obs::Counter*> layer_transfers_;  // msg.layer<k>.transfers
};

}  // namespace servet::msg
