#include "msg/mailbox.hpp"

#include <algorithm>

namespace servet::msg {

void Mailbox::post(int source, std::span<const std::uint8_t> payload) {
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(Message{source, {payload.begin(), payload.end()}});
    }
    ready_.notify_all();
}

void Mailbox::receive_from(int source, std::vector<std::uint8_t>& out) {
    std::unique_lock lock(mutex_);
    for (;;) {
        const auto it = std::find_if(queue_.begin(), queue_.end(),
                                     [source](const Message& m) { return m.source == source; });
        if (it != queue_.end()) {
            out = std::move(it->payload);
            queue_.erase(it);
            return;
        }
        ready_.wait(lock);
    }
}

bool Mailbox::try_receive_from(int source, std::vector<std::uint8_t>& out) {
    std::lock_guard lock(mutex_);
    const auto it = std::find_if(queue_.begin(), queue_.end(),
                                 [source](const Message& m) { return m.source == source; });
    if (it == queue_.end()) return false;
    out = std::move(it->payload);
    queue_.erase(it);
    return true;
}

std::size_t Mailbox::pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
}

}  // namespace servet::msg
