// Blocking mailbox: the delivery end of the in-process shared-memory
// transport. Each endpoint owns one mailbox; send() copies the payload in
// (the write side of a shared-memory transfer) and recv() copies it out
// (the read side), so a ping-pong over two mailboxes moves bytes through
// memory twice per direction like a real eager-protocol SHM device.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

namespace servet::msg {

class Mailbox {
  public:
    /// Deposit a message from `source`. Thread-safe, never blocks long
    /// (unbounded queue): the eager protocol.
    void post(int source, std::span<const std::uint8_t> payload);

    /// Block until a message from `source` arrives, copy it into `out`
    /// (resized to fit) and consume it. Messages from other sources are
    /// left queued (tag matching by source).
    void receive_from(int source, std::vector<std::uint8_t>& out);

    /// Nonblocking variant: consume and return true if a message from
    /// `source` is already queued, else return false immediately.
    [[nodiscard]] bool try_receive_from(int source, std::vector<std::uint8_t>& out);

    /// Messages currently queued (any source).
    [[nodiscard]] std::size_t pending() const;

  private:
    struct Message {
        int source;
        std::vector<std::uint8_t> payload;
    };

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Message> queue_;
};

}  // namespace servet::msg
