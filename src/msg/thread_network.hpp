// Real in-process message passing: one mailbox per endpoint, measurement
// threads pinned to the endpoint's core. This is the native counterpart of
// the paper's MPI micro-benchmark — on a multicore host its pairwise
// latencies expose the same cache/package/bus hierarchy the paper measures
// with MPICH2's SHM device.
#pragma once

#include <memory>
#include <vector>

#include "msg/mailbox.hpp"
#include "msg/network.hpp"

namespace servet::msg {

class ThreadNetwork final : public Network {
  public:
    /// `endpoints` == number of cores used; endpoint i pins to core i.
    /// When `pin` is false threads float (useful on machines with fewer
    /// cores than endpoints, e.g. in unit tests).
    explicit ThreadNetwork(int endpoints, bool pin = true);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int endpoint_count() const override { return endpoints_; }
    [[nodiscard]] Seconds pingpong_latency(CorePair pair, Bytes size, int reps) override;
    [[nodiscard]] std::vector<Seconds> concurrent_latency(const std::vector<CorePair>& pairs,
                                                          Bytes size, int reps) override;

  private:
    int endpoints_;
    bool pin_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace servet::msg
