// Network decorator injecting the message-side faults of a FaultPlan:
// drops (the transport times out waiting for a reply — thrown as
// TransientNetworkError, which comm_costs retries within its budget) and
// delays (a congested hop multiplies the observed latency). One decision
// per latency measurement, deterministic per plan seed; fork() mixes the
// task salt into the replica's stream so parallel fault injection is
// byte-identical to serial. Mirrors FlakyPlatform on the Platform side.
#pragma once

#include <atomic>
#include <memory>

#include "base/fault_plan.hpp"
#include "base/rng.hpp"
#include "msg/network.hpp"

namespace servet::msg {

class FaultyNetwork final : public Network {
  public:
    /// Uses only the network-side fields of `plan` (drop_probability,
    /// delay_probability, delay_factor, seed). `inner` must outlive this
    /// decorator.
    FaultyNetwork(Network& inner, const FaultPlan& plan);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint64_t fingerprint() const override;
    [[nodiscard]] bool forkable() const override { return inner_->forkable(); }
    [[nodiscard]] std::unique_ptr<Network> fork(std::uint64_t noise_salt) const override;
    [[nodiscard]] int endpoint_count() const override { return inner_->endpoint_count(); }

    [[nodiscard]] Seconds pingpong_latency(CorePair pair, Bytes size, int reps) override;
    [[nodiscard]] std::vector<Seconds> concurrent_latency(const std::vector<CorePair>& pairs,
                                                          Bytes size, int reps) override;

    /// Drops injected by this decorator and every replica forked from it
    /// (replicas share the counter).
    [[nodiscard]] int drops_injected() const { return drops_->load(); }

  private:
    FaultyNetwork(std::unique_ptr<Network> owned, const FaultPlan& plan,
                  std::shared_ptr<std::atomic<int>> drops);

    /// Draws one fault decision for a measured latency. May throw
    /// TransientNetworkError (drop) or inflate the value (delay).
    [[nodiscard]] Seconds filter(Seconds latency);

    Network* inner_;
    std::unique_ptr<Network> owned_;  ///< set on forked replicas only
    FaultPlan plan_;
    Rng rng_;
    std::shared_ptr<std::atomic<int>> drops_;  ///< shared with replicas
};

}  // namespace servet::msg
