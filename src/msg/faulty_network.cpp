#include "msg/faulty_network.hpp"

#include "base/check.hpp"
#include "base/hash.hpp"
#include "obs/metrics.hpp"

namespace servet::msg {

namespace {

// Stable: drops/delays are functions of the plan seed and the task salts,
// never of scheduling.
obs::Counter& fault_drops() {
    static obs::Counter& c = obs::counter("msg.fault.drops", obs::Stability::Stable);
    return c;
}
obs::Counter& fault_delays() {
    static obs::Counter& c = obs::counter("msg.fault.delays", obs::Stability::Stable);
    return c;
}

}  // namespace

FaultyNetwork::FaultyNetwork(Network& inner, const FaultPlan& plan)
    : inner_(&inner), plan_(plan), rng_(plan.seed),
      drops_(std::make_shared<std::atomic<int>>(0)) {
    SERVET_CHECK(plan.drop_probability >= 0 && plan.drop_probability <= 1);
    SERVET_CHECK(plan.delay_probability >= 0 && plan.delay_probability <= 1);
    SERVET_CHECK_MSG(plan.drop_probability + plan.delay_probability <= 1.0,
                     "network fault probabilities must sum to at most 1");
    SERVET_CHECK(plan.delay_factor >= 1.0);
}

FaultyNetwork::FaultyNetwork(std::unique_ptr<Network> owned, const FaultPlan& plan,
                             std::shared_ptr<std::atomic<int>> drops)
    : inner_(owned.get()), owned_(std::move(owned)), plan_(plan), rng_(plan.seed),
      drops_(std::move(drops)) {}

std::string FaultyNetwork::name() const { return "faulty(" + inner_->name() + ")"; }

std::uint64_t FaultyNetwork::fingerprint() const {
    const std::uint64_t inner = inner_->fingerprint();
    if (inner == 0) return 0;
    // Mirrors FlakyPlatform: a drop-only plan never changes a measured
    // latency (the retried transfer reports the true value), so it keeps
    // the inner fingerprint and stays memo/journal-compatible with clean
    // runs. Only delays perturb values.
    if (!plan_.perturbs_network_values()) return inner;
    return inner ^ mix64(plan_.fingerprint());
}

std::unique_ptr<Network> FaultyNetwork::fork(std::uint64_t noise_salt) const {
    std::unique_ptr<Network> inner = inner_->fork(noise_salt);
    if (inner == nullptr) return nullptr;
    // Replica fault streams derive from (plan seed, task salt), matching
    // FlakyPlatform: parallel runs drop the same messages as serial ones.
    FaultPlan plan = plan_;
    plan.seed = mix64(plan_.seed ^ noise_salt);
    return std::unique_ptr<Network>(new FaultyNetwork(std::move(inner), plan, drops_));
}

Seconds FaultyNetwork::filter(Seconds latency) {
    const double u = rng_.next_double();
    double band = plan_.drop_probability;
    if (u < band) {
        drops_->fetch_add(1, std::memory_order_relaxed);
        fault_drops().increment();
        throw TransientNetworkError("injected message drop");
    }
    band += plan_.delay_probability;
    if (u < band) {
        fault_delays().increment();
        return latency * plan_.delay_factor;
    }
    return latency;
}

Seconds FaultyNetwork::pingpong_latency(CorePair pair, Bytes size, int reps) {
    return filter(inner_->pingpong_latency(pair, size, reps));
}

std::vector<Seconds> FaultyNetwork::concurrent_latency(const std::vector<CorePair>& pairs,
                                                       Bytes size, int reps) {
    std::vector<Seconds> result = inner_->concurrent_latency(pairs, size, reps);
    for (Seconds& s : result) s = filter(s);
    return result;
}

}  // namespace servet::msg
