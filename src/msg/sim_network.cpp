#include "msg/sim_network.hpp"

#include <map>
#include <string>

#include "base/check.hpp"
#include "base/hash.hpp"
#include "obs/trace.hpp"

namespace servet::msg {

namespace {

obs::Counter& pingpong_calls() {
    static obs::Counter& c = obs::counter("msg.pingpong.calls", obs::Stability::Stable);
    return c;
}
obs::Counter& concurrent_calls() {
    static obs::Counter& c = obs::counter("msg.concurrent.calls", obs::Stability::Stable);
    return c;
}
obs::Counter& messages_counter() {
    static obs::Counter& c = obs::counter("msg.messages", obs::Stability::Stable);
    return c;
}
obs::Counter& bytes_counter() {
    static obs::Counter& c = obs::counter("msg.bytes", obs::Stability::Stable);
    return c;
}

std::vector<obs::Counter*> layer_counters(int layers) {
    std::vector<obs::Counter*> result;
    result.reserve(static_cast<std::size_t>(layers));
    for (int k = 0; k < layers; ++k)
        result.push_back(&obs::counter("msg.layer" + std::to_string(k) + ".transfers",
                                       obs::Stability::Stable));
    return result;
}

}  // namespace

SimNetwork::SimNetwork(sim::MachineSpec spec)
    : spec_(std::move(spec)),
      model_(spec_),
      noise_(spec_.seed ^ 0xc0337ULL),
      layer_transfers_(layer_counters(model_.layer_count())) {}

SimNetwork::SimNetwork(sim::MachineSpec spec, std::uint64_t noise_seed)
    : spec_(std::move(spec)),
      model_(spec_),
      noise_(noise_seed),
      layer_transfers_(layer_counters(model_.layer_count())) {}

void SimNetwork::count_transfers(CorePair pair, Bytes size, int reps) {
    // A ping-pong rep is two messages, one each way.
    const std::uint64_t transfers = 2 * static_cast<std::uint64_t>(reps);
    messages_counter().add(transfers);
    bytes_counter().add(transfers * size);
    const int layer = model_.layer_of(pair);
    if (layer >= 0 && layer < static_cast<int>(layer_transfers_.size()))
        layer_transfers_[static_cast<std::size_t>(layer)]->add(transfers);
}

std::string SimNetwork::name() const { return "simnet:" + model_.spec().name; }

std::uint64_t SimNetwork::fingerprint() const { return spec_.fingerprint(); }

std::unique_ptr<Network> SimNetwork::fork(std::uint64_t noise_salt) const {
    const std::uint64_t noise_seed = mix64(spec_.seed ^ 0xc0337ULL ^ noise_salt);
    return std::make_unique<SimNetwork>(spec_, noise_seed);
}

int SimNetwork::endpoint_count() const { return model_.spec().n_cores; }

Seconds SimNetwork::pingpong_latency(CorePair pair, Bytes size, int reps) {
    SERVET_TRACE_SPAN("msg/pingpong");
    SERVET_CHECK(reps > 0);
    pingpong_calls().increment();
    count_transfers(pair, size, reps);
    // Reps average out jitter, as on hardware: simulate each rep's noise.
    Seconds total = 0;
    for (int r = 0; r < reps; ++r)
        total += model_.latency(pair, size) *
                 noise_.jitter(model_.spec().measurement_jitter);
    return total / reps;
}

std::vector<Seconds> SimNetwork::concurrent_latency(const std::vector<CorePair>& pairs,
                                                    Bytes size, int reps) {
    SERVET_TRACE_SPAN("msg/concurrent");
    SERVET_CHECK(!pairs.empty() && reps > 0);
    concurrent_calls().increment();
    for (const CorePair& pair : pairs) count_transfers(pair, size, reps);
    // Contention is per layer: messages sharing a layer slow each other
    // down; traffic on other layers does not interfere.
    std::map<int, int> on_layer;
    for (const CorePair& pair : pairs) ++on_layer[model_.layer_of(pair)];

    std::vector<Seconds> result;
    result.reserve(pairs.size());
    for (const CorePair& pair : pairs) {
        const int concurrent = on_layer[model_.layer_of(pair)];
        Seconds total = 0;
        for (int r = 0; r < reps; ++r)
            total += model_.latency_concurrent(pair, size, concurrent) *
                     noise_.jitter(model_.spec().measurement_jitter);
        result.push_back(total / reps);
    }
    return result;
}

}  // namespace servet::msg
