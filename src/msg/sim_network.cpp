#include "msg/sim_network.hpp"

#include <map>

#include "base/check.hpp"
#include "base/hash.hpp"

namespace servet::msg {

SimNetwork::SimNetwork(sim::MachineSpec spec)
    : spec_(std::move(spec)), model_(spec_), noise_(spec_.seed ^ 0xc0337ULL) {}

SimNetwork::SimNetwork(sim::MachineSpec spec, std::uint64_t noise_seed)
    : spec_(std::move(spec)), model_(spec_), noise_(noise_seed) {}

std::string SimNetwork::name() const { return "simnet:" + model_.spec().name; }

std::uint64_t SimNetwork::fingerprint() const { return spec_.fingerprint(); }

std::unique_ptr<Network> SimNetwork::fork(std::uint64_t noise_salt) const {
    const std::uint64_t noise_seed = mix64(spec_.seed ^ 0xc0337ULL ^ noise_salt);
    return std::make_unique<SimNetwork>(spec_, noise_seed);
}

int SimNetwork::endpoint_count() const { return model_.spec().n_cores; }

Seconds SimNetwork::pingpong_latency(CorePair pair, Bytes size, int reps) {
    SERVET_CHECK(reps > 0);
    // Reps average out jitter, as on hardware: simulate each rep's noise.
    Seconds total = 0;
    for (int r = 0; r < reps; ++r)
        total += model_.latency(pair, size) *
                 noise_.jitter(model_.spec().measurement_jitter);
    return total / reps;
}

std::vector<Seconds> SimNetwork::concurrent_latency(const std::vector<CorePair>& pairs,
                                                    Bytes size, int reps) {
    SERVET_CHECK(!pairs.empty() && reps > 0);
    // Contention is per layer: messages sharing a layer slow each other
    // down; traffic on other layers does not interfere.
    std::map<int, int> on_layer;
    for (const CorePair& pair : pairs) ++on_layer[model_.layer_of(pair)];

    std::vector<Seconds> result;
    result.reserve(pairs.size());
    for (const CorePair& pair : pairs) {
        const int concurrent = on_layer[model_.layer_of(pair)];
        Seconds total = 0;
        for (int r = 0; r < reps; ++r)
            total += model_.latency_concurrent(pair, size, concurrent) *
                     noise_.jitter(model_.spec().measurement_jitter);
        result.push_back(total / reps);
    }
    return result;
}

}  // namespace servet::msg
