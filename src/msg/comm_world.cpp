#include "msg/comm_world.hpp"

#include "base/check.hpp"

namespace servet::msg {

CommWorld::CommWorld(int ranks) {
    SERVET_CHECK(ranks >= 1);
    mailboxes_.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

Endpoint CommWorld::endpoint(int rank) {
    SERVET_CHECK(rank >= 0 && rank < size());
    return Endpoint(this, rank);
}

int Endpoint::world_size() const { return world_->size(); }

void Endpoint::send(int destination, std::span<const std::uint8_t> payload) {
    SERVET_CHECK(destination >= 0 && destination < world_->size());
    SERVET_CHECK_MSG(destination != rank_, "self-send is not supported");
    world_->mailboxes_[static_cast<std::size_t>(destination)]->post(rank_, payload);
}

void Endpoint::recv(int source, std::vector<std::uint8_t>& out) {
    SERVET_CHECK(source >= 0 && source < world_->size());
    world_->mailboxes_[static_cast<std::size_t>(rank_)]->receive_from(source, out);
}

bool Endpoint::try_recv(int source, std::vector<std::uint8_t>& out) {
    SERVET_CHECK(source >= 0 && source < world_->size());
    return world_->mailboxes_[static_cast<std::size_t>(rank_)]->try_receive_from(source, out);
}

void Endpoint::barrier() {
    std::unique_lock lock(world_->barrier_mutex_);
    const std::uint64_t my_epoch = world_->barrier_epoch_;
    if (++world_->barrier_waiting_ == world_->size()) {
        world_->barrier_waiting_ = 0;
        ++world_->barrier_epoch_;
        world_->barrier_cv_.notify_all();
        return;
    }
    world_->barrier_cv_.wait(lock,
                             [&] { return world_->barrier_epoch_ != my_epoch; });
}

}  // namespace servet::msg
