#include "msg/thread_network.hpp"

#include <barrier>
#include <thread>

#include "base/check.hpp"
#include "hw/affinity.hpp"
#include "hw/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace servet::msg {

ThreadNetwork::ThreadNetwork(int endpoints, bool pin) : endpoints_(endpoints), pin_(pin) {
    SERVET_CHECK(endpoints >= 1);
    mailboxes_.reserve(static_cast<std::size_t>(endpoints));
    for (int i = 0; i < endpoints; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

std::string ThreadNetwork::name() const {
    return "threadnet:" + std::to_string(endpoints_) + "-endpoint";
}

Seconds ThreadNetwork::pingpong_latency(CorePair pair, Bytes size, int reps) {
    obs::counter("msg.pingpong.calls", obs::Stability::Stable).increment();
    return concurrent_latency({pair}, size, reps).front();
}

std::vector<Seconds> ThreadNetwork::concurrent_latency(const std::vector<CorePair>& pairs,
                                                       Bytes size, int reps) {
    SERVET_TRACE_SPAN("msg/concurrent");
    SERVET_CHECK(!pairs.empty() && reps > 0);
    obs::counter("msg.concurrent.calls", obs::Stability::Stable).increment();
    // Each measured rep is a round trip: two messages of `size` per pair.
    const std::uint64_t transfers = 2 * static_cast<std::uint64_t>(reps) * pairs.size();
    obs::counter("msg.messages", obs::Stability::Stable).add(transfers);
    obs::counter("msg.bytes", obs::Stability::Stable).add(transfers * size);
    for (const CorePair& pair : pairs) {
        SERVET_CHECK(pair.a != pair.b);
        SERVET_CHECK(pair.a >= 0 && pair.a < endpoints_ && pair.b >= 0 && pair.b < endpoints_);
    }

    const std::size_t n = pairs.size();
    std::vector<Seconds> results(n, 0.0);
    std::barrier sync(static_cast<std::ptrdiff_t>(2 * n));

    std::vector<std::thread> threads;
    threads.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const CorePair pair = pairs[i];
        // Initiator: times `reps` round trips, reports one-way latency.
        threads.emplace_back([&, i, pair] {
            if (pin_) (void)hw::pin_current_thread(pair.a);
            std::vector<std::uint8_t> buffer(size, 0xab);
            std::vector<std::uint8_t> incoming;
            Mailbox& peer = *mailboxes_[static_cast<std::size_t>(pair.b)];
            Mailbox& mine = *mailboxes_[static_cast<std::size_t>(pair.a)];

            // Warm-up round trip, then barrier so all pairs start together.
            peer.post(pair.a, buffer);
            mine.receive_from(pair.b, incoming);
            sync.arrive_and_wait();

            hw::Stopwatch watch;
            for (int r = 0; r < reps; ++r) {
                peer.post(pair.a, buffer);
                mine.receive_from(pair.b, incoming);
            }
            results[i] = watch.elapsed_seconds() / (2.0 * reps);
        });
        // Responder: echoes everything back.
        threads.emplace_back([&, pair] {
            if (pin_) (void)hw::pin_current_thread(pair.b);
            std::vector<std::uint8_t> incoming;
            Mailbox& peer = *mailboxes_[static_cast<std::size_t>(pair.a)];
            Mailbox& mine = *mailboxes_[static_cast<std::size_t>(pair.b)];

            mine.receive_from(pair.a, incoming);
            peer.post(pair.b, incoming);
            sync.arrive_and_wait();

            for (int r = 0; r < reps; ++r) {
                mine.receive_from(pair.a, incoming);
                peer.post(pair.b, incoming);
            }
        });
    }
    for (std::thread& t : threads) t.join();
    return results;
}

}  // namespace servet::msg
